package smartfilter

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"filtermap/internal/categorydb"
	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
	"filtermap/internal/products/common"
	"filtermap/internal/simclock"
)

func newEngine(t *testing.T) (*Engine, *categorydb.DB, *simclock.Manual) {
	t.Helper()
	clock := simclock.NewManual(time.Time{})
	db := NewDatabase(clock)
	if err := db.AddDomain("adult-site.net", CatPornography); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDomain("proxy-site.net", CatAnonymizers); err != nil {
		t.Fatal(err)
	}
	engine := &Engine{
		View:        &common.SyncView{DB: db},
		Policy:      common.NewCategoryPolicy(CatPornography),
		GatewayName: "mwg1.example",
	}
	return engine, db, clock
}

func req(t *testing.T, rawurl string) *httpwire.Request {
	t.Helper()
	r, err := httpwire.NewRequest("GET", rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBlockPageShape(t *testing.T) {
	engine, _, clock := newEngine(t)
	d := engine.Decide(req(t, "http://adult-site.net/x"), clock.Now())
	if !d.Block || d.Category != CatPornography {
		t.Fatalf("decision = %+v", d)
	}
	resp := d.Response
	if resp.StatusCode != 403 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Table 2's two signatures: the exact-case Via-Proxy header and the
	// MWG title.
	if raw, ok := resp.Header.RawName("Via-Proxy"); !ok || raw != "Via-Proxy" {
		t.Fatalf("Via-Proxy header = %q, %v", raw, ok)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "<title>McAfee Web Gateway - Notification</title>") {
		t.Fatal("block page missing MWG title")
	}
	if !strings.Contains(body, "URL Blocked") {
		t.Fatal("block page missing 'URL Blocked' heading")
	}
}

func TestCategoryNotEnabledPasses(t *testing.T) {
	engine, _, clock := newEngine(t)
	// Anonymizers categorized but not enabled (the Saudi configuration,
	// challenge 1).
	if d := engine.Decide(req(t, "http://proxy-site.net/"), clock.Now()); d.Block {
		t.Fatal("blocked a category the policy does not enable")
	}
}

func TestSharedDatabaseDifferentPolicies(t *testing.T) {
	// One master database, two deployments (§4.3: the Saudi central
	// policy and Etisalat differ in categories, not in data).
	clock := simclock.NewManual(time.Time{})
	db := NewDatabase(clock)
	db.AddDomain("adult-site.net", CatPornography) //nolint:errcheck // category exists
	db.AddDomain("proxy-site.net", CatAnonymizers) //nolint:errcheck // category exists

	saudi := &Engine{View: &common.SyncView{DB: db}, Policy: common.NewCategoryPolicy(CatPornography)}
	uae := &Engine{View: &common.SyncView{DB: db}, Policy: common.NewCategoryPolicy(CatPornography, CatAnonymizers)}

	r := &httpwire.Request{Method: "GET", Target: "/", Header: httpwire.NewHeader("Host", "proxy-site.net")}
	if d := saudi.Decide(r, clock.Now()); d.Block {
		t.Fatal("Saudi blocked proxies")
	}
	if d := uae.Decide(r, clock.Now()); !d.Block {
		t.Fatal("UAE passed proxies")
	}
}

func TestEngineRunsOnBlueCoatChassis(t *testing.T) {
	// §4.5 challenge 3: the engine is chassis-independent — a common
	// Gateway with ProxySG Via plus a SmartFilter engine yields McAfee
	// block pages behind Blue Coat forwarding headers.
	engine, _, clock := newEngine(t)
	n := netsim.New(clock)
	t.Cleanup(n.Close)
	as, _ := n.AddAS(5384, "ETISALAT", "AE", netip.MustParsePrefix("94.56.0.0/16"))
	isp, _ := n.AddISP("Etisalat", as)
	mb, _ := n.AddHost(netip.MustParseAddr("94.56.1.1"), "proxy1.example", isp)
	mb.SetBypassIntercept(true)
	inside, _ := n.AddHost(netip.MustParseAddr("94.56.2.2"), "", isp)

	origin, _ := n.AddHost(netip.MustParseAddr("192.0.2.1"), "adult-site.net", nil)
	l, _ := origin.Listen(80)
	srv := &httpwire.Server{Handler: httpwire.HandlerFunc(func(*httpwire.Request) *httpwire.Response {
		return httpwire.NewResponse(200, nil, []byte("adult content"))
	})}
	go srv.Serve(l) //nolint:errcheck // ends with listener

	gw := &common.Gateway{Host: mb, Engine: engine, ViaToken: "1.1 proxy1.example (Blue Coat ProxySG 6.5)"}
	isp.SetInterceptor(gw)

	client := &httpwire.Client{Dial: inside.Dialer(), Timeout: 5 * time.Second}
	resp, err := client.Get(context.Background(), "http://adult-site.net/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 403 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(resp.Body), "McAfee Web Gateway") {
		t.Fatal("block page is not McAfee's")
	}
}

func installFixture(t *testing.T, cfg Config) *netsim.Host {
	t.Helper()
	clock := simclock.NewManual(time.Time{})
	n := netsim.New(clock)
	t.Cleanup(n.Close)
	as, _ := n.AddAS(64500, "AS", "SA", netip.MustParsePrefix("10.0.0.0/16"))
	isp, _ := n.AddISP("ISP", as)
	host, _ := n.AddHost(netip.MustParseAddr("10.0.1.1"), "mwg1.example", isp)
	if cfg.Engine == nil {
		db := NewDatabase(clock)
		cfg.Engine = &Engine{View: &common.SyncView{DB: db}, Policy: common.NewCategoryPolicy()}
	}
	if _, err := Install(host, cfg); err != nil {
		t.Fatal(err)
	}
	outside, _ := n.AddHost(netip.MustParseAddr("198.51.100.9"), "", nil)
	return outside
}

func TestConsoleBanner(t *testing.T) {
	outside := installFixture(t, Config{Name: "mwg1.example"})
	client := &httpwire.Client{Dial: outside.Dialer(), Timeout: 5 * time.Second}
	for _, u := range []string{"http://10.0.1.1:4712/", "http://10.0.1.1/"} {
		resp, err := client.Get(context.Background(), u)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		if !strings.Contains(string(resp.Body), "McAfee Web Gateway") {
			t.Fatalf("console at %s missing banner", u)
		}
		if !resp.Header.Has("Via-Proxy") {
			t.Fatalf("console at %s missing Via-Proxy", u)
		}
	}
}

func TestConsoleScrubbed(t *testing.T) {
	outside := installFixture(t, Config{Name: "mwg1.example", Scrub: true})
	client := &httpwire.Client{Dial: outside.Dialer(), Timeout: 5 * time.Second}
	resp, err := client.Get(context.Background(), "http://10.0.1.1:4712/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Has("Via-Proxy") || resp.Header.Has("Server") {
		t.Fatal("scrubbed console leaks identity headers")
	}
	if strings.Contains(string(resp.Body), "McAfee") {
		t.Fatal("scrubbed console leaks brand")
	}
}

func TestSubmissionPortal(t *testing.T) {
	clock := simclock.NewManual(time.Time{})
	n := netsim.New(clock)
	t.Cleanup(n.Close)
	db := NewDatabase(clock)
	db.AddDomain("adult-site.net", CatPornography) //nolint:errcheck // category exists

	portal, _ := n.AddHost(netip.MustParseAddr("161.69.1.10"), "trustedsource.example", nil)
	l, _ := portal.Listen(80)
	srv := &httpwire.Server{Handler: SubmissionPortalHandler(db)}
	go srv.Serve(l) //nolint:errcheck // ends with listener
	lab, _ := n.AddHost(netip.MustParseAddr("128.100.50.10"), "", nil)
	client := &httpwire.Client{Dial: lab.Dialer(), Timeout: 5 * time.Second}
	ctx := context.Background()

	// url-check reports existing categorization.
	resp, err := client.Get(ctx, "http://trustedsource.example/url-check?url=http://adult-site.net/")
	if err != nil || !strings.Contains(string(resp.Body), "Pornography") {
		t.Fatalf("url-check = %v %v", resp, err)
	}
	resp, _ = client.Get(ctx, "http://trustedsource.example/url-check?url=http://fresh.info/")
	if !strings.Contains(string(resp.Body), "not currently categorized") {
		t.Fatalf("url-check fresh = %s", resp.Body)
	}

	// Submission flow (§4.3).
	resp, err = SubmitViaPortal(ctx, client, "trustedsource.example", "http://fresh.info/", CatPornography, "r@lab.example")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("submit = %v, %v", resp, err)
	}
	clock.Advance(db.ReviewDelay)
	if cat, _ := db.Lookup("fresh.info"); cat != CatPornography {
		t.Fatalf("post-review category = %q", cat)
	}
	// GET on the submit endpoint serves the form.
	resp, _ = client.Get(ctx, "http://trustedsource.example/url-submit")
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "Submit a Site") {
		t.Fatalf("form = %d", resp.StatusCode)
	}
	// Status endpoint.
	resp, _ = client.Get(ctx, "http://trustedsource.example/url-submit/status?id=1")
	if !strings.Contains(string(resp.Body), "accepted") {
		t.Fatalf("status = %s", resp.Body)
	}
}

func TestTaxonomyCoversPaperCategories(t *testing.T) {
	codes := map[string]bool{}
	for _, c := range DefaultTaxonomy() {
		codes[c.Code] = true
	}
	for _, c := range []string{CatPornography, CatAnonymizers} {
		if !codes[c] {
			t.Errorf("taxonomy missing %q (used by §4.3 case studies)", c)
		}
	}
}
