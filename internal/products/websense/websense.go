// Package websense implements Websense's web security gateway (Table 1:
// "Web proxy gateways including features to monitor for corporate data
// leakage").
//
// Wire behaviour reproduced for the paper's methodology:
//
//   - blocked requests redirect to the filter host on port 15871 with a
//     "ws-session" parameter and a "/cgi-bin/blockpage.cgi" path — Table
//     2's Shodan keywords and WhatWeb signature,
//   - a Content Gateway console whose banner carries "Websense",
//   - a concurrent-user license model: when demand exceeds the licensed
//     seats, no content is filtered (§4.4: "a Yemeni ISP using Websense
//     with a limited number of concurrent user licenses"),
//   - an update subscription that the vendor can cut off, freezing the
//     deployment's database (§2.2: Websense "discontinu[ed] support of
//     their product for the Yemen government" in 2009).
package websense

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"strconv"
	"time"

	"filtermap/internal/categorydb"
	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
	"filtermap/internal/products/common"
	"filtermap/internal/simclock"
)

// Identity strings.
const (
	// Name is the product name used in reports.
	Name = "Websense"
	// EngineName identifies the policy engine.
	EngineName   = "Websense Web Security"
	serverBanner = "Websense Content Gateway"
)

// BlockPagePort is the well-known Websense block-page port; Table 2's
// signature is a Location header redirecting to it.
const BlockPagePort = 15871

// Vendor categories.
const (
	CatAdultContent = "adult-content"
	CatProxyAvoid   = "proxy-avoidance"
	CatGambling     = "gambling"
	CatNews         = "news-and-media"
	CatAdvocacy     = "advocacy-groups"
	CatLGBT         = "gay-or-lesbian-issues"
	CatReligion     = "non-traditional-religions"
	CatMilitancy    = "militancy-and-extremist"
)

// DefaultTaxonomy returns the Websense category set.
func DefaultTaxonomy() []categorydb.Category {
	return []categorydb.Category{
		{Code: CatAdultContent, Name: "Adult Content", Theme: "social"},
		{Code: CatProxyAvoid, Name: "Proxy Avoidance", Theme: "internet-tools"},
		{Code: CatGambling, Name: "Gambling", Theme: "social"},
		{Code: CatNews, Name: "News and Media", Theme: "political"},
		{Code: CatAdvocacy, Name: "Advocacy Groups", Theme: "political"},
		{Code: CatLGBT, Name: "Gay or Lesbian or Bisexual Interest", Theme: "social"},
		{Code: CatReligion, Name: "Non-Traditional Religions", Theme: "social"},
		{Code: CatMilitancy, Name: "Militancy and Extremist", Theme: "conflict-security"},
	}
}

// NewDatabase creates the vendor's master database.
func NewDatabase(clock simclock.Clock) *categorydb.DB {
	db := categorydb.New("Websense", clock)
	for _, c := range DefaultTaxonomy() {
		db.AddCategory(c)
	}
	return db
}

// Engine is the Websense policy engine.
type Engine struct {
	// View is the deployment's synced view of the master database. A
	// FrozenAt view models a vendor update cut-off.
	View *common.SyncView
	// Policy selects which categories this deployment blocks.
	Policy *common.CategoryPolicy
	// BlockHost is the filter machine's hostname or IP; block redirects
	// point at BlockHost:15871.
	BlockHost string
}

// ProductName implements common.PolicyEngine.
func (e *Engine) ProductName() string { return EngineName }

// Decide implements common.PolicyEngine.
func (e *Engine) Decide(req *httpwire.Request, at time.Time) common.Decision {
	host := req.Hostname()
	if host == "" {
		return common.Pass
	}
	if label, ok := e.Policy.CustomCategory(host); ok {
		return common.Decision{Block: true, Category: label, Response: e.BlockRedirect(req, label)}
	}
	cat, ok := e.View.Lookup(host, at)
	if !ok || !e.Policy.Enabled(cat) {
		return common.Pass
	}
	return common.Decision{Block: true, Category: cat, Response: e.BlockRedirect(req, cat)}
}

// BlockRedirect renders the block response: a redirect to blockpage.cgi on
// port 15871 with a deterministic ws-session token.
func (e *Engine) BlockRedirect(req *httpwire.Request, category string) *httpwire.Response {
	session := wsSession(req.FullURL())
	loc := fmt.Sprintf("http://%s:%d/cgi-bin/blockpage.cgi?ws-session=%d&cat=%s&url=%s",
		e.BlockHost, BlockPagePort, session, url.QueryEscape(category), url.QueryEscape(req.FullURL()))
	hdr := httpwire.NewHeader(
		"Location", loc,
		"Content-Type", "text/html; charset=utf-8",
		"Cache-Control", "no-cache",
		"Server", serverBanner,
	)
	return httpwire.NewResponse(302, hdr, common.HTMLPage("Redirect", `<p>Redirecting to block page.</p>`))
}

// wsSession derives a stable pseudo-session id from the URL so replays are
// deterministic.
func wsSession(u string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(u)) //nolint:errcheck // hash writes cannot fail
	return h.Sum32()%900000000 + 100000000
}

// Deployment is an installed Websense gateway.
type Deployment struct {
	Name    string
	Host    *netsim.Host
	Engine  *Engine
	Gateway *common.Gateway
}

// Config controls deployment installation.
type Config struct {
	// Name is the gateway hostname.
	Name string
	// Engine is the policy engine (required).
	Engine *Engine
	// License limits concurrent filtered users; exceeding it fails open.
	License *common.LicenseModel
	// ConsoleVisibility controls external reachability of the block-page
	// service and console.
	ConsoleVisibility netsim.Visibility
	// Scrub blanks brand strings from pages (Table 5's header-scrubbing
	// evasion). The block redirect still targets port 15871 with a
	// ws-session parameter — changing that breaks deployed agents — so
	// the redirect-shaped signature survives.
	Scrub bool
}

// BrandTokens are the strings a scrubbing operator blanks from pages.
var BrandTokens = []string{"Websense"}

// Install mounts a Websense gateway on host. The caller installs
// dep.Gateway as the ISP's interceptor to put it inline.
func Install(host *netsim.Host, cfg Config) (*Deployment, error) {
	if cfg.Name == "" {
		cfg.Name = host.Name()
	}
	if cfg.Engine.BlockHost == "" {
		if host.Name() != "" {
			cfg.Engine.BlockHost = host.Name()
		} else {
			cfg.Engine.BlockHost = host.Addr().String()
		}
	}
	host.SetBypassIntercept(true)
	gw := &common.Gateway{
		Host:     host,
		Engine:   cfg.Engine,
		ViaToken: fmt.Sprintf("1.1 %s (Websense Content Gateway)", cfg.Name),
		License:  cfg.License,
	}
	if cfg.Scrub {
		gw.Anonymize = true
		gw.BrandTokens = BrandTokens
		gw.ViaToken = ""
	}
	dep := &Deployment{Name: cfg.Name, Host: host, Engine: cfg.Engine, Gateway: gw}

	db := cfg.Engine.View.DB

	// Block-page service on 15871.
	mux := httpwire.NewMux()
	mux.RouteFunc("/cgi-bin/blockpage.cgi", func(req *httpwire.Request) *httpwire.Response {
		q := req.URL.Query()
		catCode := q.Get("cat")
		display := catCode
		if c, ok := db.Category(catCode); ok {
			display = c.Name
		}
		session := q.Get("ws-session")
		if session == "" {
			session = "0"
		}
		body := fmt.Sprintf(`<h1>Content blocked by your organization's policy</h1>
%s
%s
%s
<p><i>Websense Enterprise</i></p>`,
			common.Para("Access to this website has been blocked."),
			common.Para("URL: %s", q.Get("url")),
			common.Para("Category: %s — session %s", display, session))
		return httpwire.NewResponse(200,
			httpwire.NewHeader("Content-Type", "text/html; charset=utf-8", "Server", serverBanner),
			common.HTMLPage("Websense - Content Blocked", body))
	})
	mux.RouteFunc("/", func(req *httpwire.Request) *httpwire.Response {
		body := fmt.Sprintf(`<h1>Websense Content Gateway</h1>
%s`,
			common.Para("Gateway %s — Websense Web Security management.", cfg.Name))
		return httpwire.NewResponse(200,
			httpwire.NewHeader("Content-Type", "text/html; charset=utf-8", "Server", serverBanner),
			common.HTMLPage("Websense Content Gateway", body))
	})
	srv := &httpwire.Server{Handler: mux, ServerHeader: serverBanner}
	if cfg.Scrub {
		srv = &httpwire.Server{Handler: common.ScrubHandler(mux, BrandTokens)}
	}
	bl, err := host.ListenVisibility(BlockPagePort, cfg.ConsoleVisibility)
	if err != nil {
		return nil, err
	}
	go srv.Serve(bl) //nolint:errcheck // ends with listener

	// Port 80 serves the same console face.
	fl, err := host.ListenVisibility(80, cfg.ConsoleVisibility)
	if err != nil {
		return nil, err
	}
	go srv.Serve(fl) //nolint:errcheck // ends with listener

	return dep, nil
}

// SessionFromLocation extracts the ws-session parameter from a block
// redirect Location value, for fingerprint validation.
func SessionFromLocation(loc string) (uint32, bool) {
	u, err := url.Parse(loc)
	if err != nil {
		return 0, false
	}
	s := u.Query().Get("ws-session")
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}
