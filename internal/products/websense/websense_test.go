package websense

import (
	"context"
	"net/netip"
	"net/url"
	"strings"
	"testing"
	"time"

	"filtermap/internal/categorydb"
	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
	"filtermap/internal/products/common"
	"filtermap/internal/simclock"
)

func newEngine(t *testing.T) (*Engine, *categorydb.DB, *simclock.Manual) {
	t.Helper()
	clock := simclock.NewManual(time.Time{})
	db := NewDatabase(clock)
	if err := db.AddDomain("adult-site.net", CatAdultContent); err != nil {
		t.Fatal(err)
	}
	engine := &Engine{
		View:      &common.SyncView{DB: db},
		Policy:    common.NewCategoryPolicy(CatAdultContent),
		BlockHost: "wsg1.example",
	}
	return engine, db, clock
}

func req(t *testing.T, rawurl string) *httpwire.Request {
	t.Helper()
	r, err := httpwire.NewRequest("GET", rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBlockRedirectShape(t *testing.T) {
	engine, _, clock := newEngine(t)
	d := engine.Decide(req(t, "http://adult-site.net/x"), clock.Now())
	if !d.Block || d.Category != CatAdultContent {
		t.Fatalf("decision = %+v", d)
	}
	resp := d.Response
	if resp.StatusCode != 302 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	u, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		t.Fatal(err)
	}
	// Table 2's signature: host on port 15871, path blockpage.cgi,
	// parameter ws-session.
	if u.Port() != "15871" || u.Path != "/cgi-bin/blockpage.cgi" {
		t.Fatalf("Location = %q", resp.Header.Get("Location"))
	}
	if u.Query().Get("ws-session") == "" {
		t.Fatal("ws-session missing")
	}
}

func TestWsSessionDeterministic(t *testing.T) {
	engine, _, clock := newEngine(t)
	r := req(t, "http://adult-site.net/x")
	a := engine.Decide(r, clock.Now()).Response.Header.Get("Location")
	b := engine.Decide(r, clock.Now()).Response.Header.Get("Location")
	if a != b {
		t.Fatal("ws-session not deterministic for the same URL")
	}
	other := engine.Decide(req(t, "http://adult-site.net/other"), clock.Now()).Response.Header.Get("Location")
	sa, _ := SessionFromLocation(a)
	so, _ := SessionFromLocation(other)
	if sa == so {
		t.Fatal("distinct URLs share a ws-session")
	}
}

func TestSessionFromLocation(t *testing.T) {
	s, ok := SessionFromLocation("http://x:15871/cgi-bin/blockpage.cgi?ws-session=123456789")
	if !ok || s != 123456789 {
		t.Fatalf("session = %d, %v", s, ok)
	}
	for _, bad := range []string{"http://x/", "http://x/?ws-session=abc", "::bad::"} {
		if _, ok := SessionFromLocation(bad); ok {
			t.Errorf("SessionFromLocation(%q) ok", bad)
		}
	}
}

type fixture struct {
	clock  *simclock.Manual
	db     *categorydb.DB
	inside *netsim.Host
	out    *netsim.Host
}

func installFixture(t *testing.T, mut func(*Config)) *fixture {
	t.Helper()
	clock := simclock.NewManual(time.Time{})
	n := netsim.New(clock)
	t.Cleanup(n.Close)
	db := NewDatabase(clock)
	db.AddDomain("adult-site.net", CatAdultContent) //nolint:errcheck // category exists

	as, _ := n.AddAS(64550, "TX-UTIL", "US", netip.MustParsePrefix("10.0.0.0/16"))
	isp, _ := n.AddISP("TexasUtility", as)
	filterHost, _ := n.AddHost(netip.MustParseAddr("10.0.1.1"), "wsg1.example", isp)
	inside, _ := n.AddHost(netip.MustParseAddr("10.0.2.2"), "", isp)
	outside, _ := n.AddHost(netip.MustParseAddr("198.51.100.9"), "", nil)

	origin, _ := n.AddHost(netip.MustParseAddr("192.0.2.1"), "adult-site.net", nil)
	l, _ := origin.Listen(80)
	srv := &httpwire.Server{Handler: httpwire.HandlerFunc(func(*httpwire.Request) *httpwire.Response {
		return httpwire.NewResponse(200, nil, []byte("adult content"))
	})}
	go srv.Serve(l) //nolint:errcheck // ends with listener

	cfg := Config{
		Name: "wsg1.example",
		Engine: &Engine{
			View:   &common.SyncView{DB: db},
			Policy: common.NewCategoryPolicy(CatAdultContent),
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	dep, err := Install(filterHost, cfg)
	if err != nil {
		t.Fatal(err)
	}
	isp.SetInterceptor(dep.Gateway)
	return &fixture{clock: clock, db: db, inside: inside, out: outside}
}

func TestEndToEndBlockPageFlow(t *testing.T) {
	f := installFixture(t, nil)
	client := &httpwire.Client{Dial: f.inside.Dialer(), Timeout: 5 * time.Second}
	chain, err := client.GetFollow(context.Background(), "http://adult-site.net/")
	if err != nil {
		t.Fatalf("GetFollow: %v", err)
	}
	if len(chain) != 2 || chain[0].StatusCode != 302 {
		t.Fatalf("chain = %d hops", len(chain))
	}
	final := string(chain[1].Body)
	if !strings.Contains(final, "Content blocked by your organization's policy") {
		t.Fatalf("block page = %s", final)
	}
	if !strings.Contains(final, "Websense") {
		t.Fatal("block page missing brand")
	}
}

func TestLicenseFailOpen(t *testing.T) {
	f := installFixture(t, func(cfg *Config) {
		// Licensed for 100 seats against 1000 users from 10:00 to 14:00.
		cfg.License = &common.LicenseModel{
			MaxConcurrent: 100,
			Load: func(at time.Time) int {
				h := at.UTC().Hour()
				if h >= 10 && h < 14 {
					return 1000
				}
				return 50
			},
		}
	})
	client := &httpwire.Client{Dial: f.inside.Dialer(), Timeout: 5 * time.Second}
	ctx := context.Background()

	// 08:00: enforced.
	f.clock.Advance(8 * time.Hour)
	resp, err := client.Get(ctx, "http://adult-site.net/")
	if err != nil || resp.StatusCode != 302 {
		t.Fatalf("08:00 = %v, %v; want 302", resp, err)
	}
	// 11:00: license exhausted, §4.4: "no content would be filtered".
	f.clock.Advance(3 * time.Hour)
	resp, err = client.Get(ctx, "http://adult-site.net/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("11:00 = %v, %v; want 200 fail-open", resp, err)
	}
	// 15:00: enforced again.
	f.clock.Advance(4 * time.Hour)
	resp, err = client.Get(ctx, "http://adult-site.net/")
	if err != nil || resp.StatusCode != 302 {
		t.Fatalf("15:00 = %v, %v; want 302", resp, err)
	}
}

func TestFrozenDatabaseIgnoresNewCategorizations(t *testing.T) {
	clock := simclock.NewManual(time.Time{})
	db := NewDatabase(clock)
	frozen := clock.Now().Add(simclock.Days(1))
	engine := &Engine{
		View:      &common.SyncView{DB: db, FrozenAt: frozen},
		Policy:    common.NewCategoryPolicy(CatProxyAvoid),
		BlockHost: "wsg1.example",
	}
	// The vendor categorizes a new proxy after the cutoff (Websense cut
	// Yemen off in 2009, §2.2).
	clock.Advance(simclock.Days(2))
	db.Submit("http://newproxy.info/", CatProxyAvoid, netip.Addr{}, "") //nolint:errcheck // valid
	clock.Advance(simclock.Days(10))
	if d := engine.Decide(req(t, "http://newproxy.info/"), clock.Now()); d.Block {
		t.Fatal("frozen deployment learned a post-cutoff categorization")
	}
}

func TestBlockPageService(t *testing.T) {
	f := installFixture(t, nil)
	client := &httpwire.Client{Dial: f.out.Dialer(), Timeout: 5 * time.Second}
	resp, err := client.Get(context.Background(),
		"http://10.0.1.1:15871/cgi-bin/blockpage.cgi?ws-session=42&cat=adult-content&url=http://x/")
	if err != nil {
		t.Fatal(err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "Adult Content") || !strings.Contains(body, "42") {
		t.Fatalf("blockpage.cgi = %s", body)
	}
	// Console face on 80.
	resp, err = client.Get(context.Background(), "http://10.0.1.1/")
	if err != nil || !strings.Contains(string(resp.Body), "Websense Content Gateway") {
		t.Fatalf("console = %v, %v", resp, err)
	}
}

func TestScrubKeepsStructuralRedirect(t *testing.T) {
	f := installFixture(t, func(cfg *Config) { cfg.Scrub = true })
	client := &httpwire.Client{Dial: f.inside.Dialer(), Timeout: 5 * time.Second}
	chain, err := client.GetFollow(context.Background(), "http://adult-site.net/")
	if err != nil {
		t.Fatal(err)
	}
	loc := chain[0].Header.Get("Location")
	if !strings.Contains(loc, ":15871") || !strings.Contains(loc, "ws-session=") {
		t.Fatal("scrubbing broke the structural block redirect")
	}
	if strings.Contains(string(chain[len(chain)-1].Body), "Websense") {
		t.Fatal("scrubbed block page leaks brand")
	}
}
