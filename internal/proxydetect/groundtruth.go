package proxydetect

import (
	"fmt"
	"sort"
	"strings"
)

// Ground-truth validation: §7 proposes the paper's confirmation results
// as "a useful ground truth for more general identification of
// transparent proxies". Validation compares a signature-free survey
// against the set of networks the §4 methodology confirmed as filtered,
// yielding the precision/recall a scalable detector earns.

// GroundTruth is the per-network confirmed state: true where the
// confirmation methodology (or elementary absence of middleboxes)
// established filtering.
type GroundTruth map[string]bool

// Validation is the survey-vs-ground-truth comparison.
type Validation struct {
	TruePositives  []string
	TrueNegatives  []string
	FalsePositives []string
	FalseNegatives []string
	// Errored lists networks whose probes failed outright (excluded from
	// the counts).
	Errored []string
}

// Precision returns TP/(TP+FP), or 1 when the detector flagged nothing.
func (v *Validation) Precision() float64 {
	flagged := len(v.TruePositives) + len(v.FalsePositives)
	if flagged == 0 {
		return 1
	}
	return float64(len(v.TruePositives)) / float64(flagged)
}

// Recall returns TP/(TP+FN), or 1 when nothing was filtered.
func (v *Validation) Recall() float64 {
	actual := len(v.TruePositives) + len(v.FalseNegatives)
	if actual == 0 {
		return 1
	}
	return float64(len(v.TruePositives)) / float64(actual)
}

// Summary renders the comparison.
func (v *Validation) Summary() string {
	return fmt.Sprintf("precision %.2f recall %.2f (tp=%d tn=%d fp=%d fn=%d, %d errored)",
		v.Precision(), v.Recall(),
		len(v.TruePositives), len(v.TrueNegatives),
		len(v.FalsePositives), len(v.FalseNegatives), len(v.Errored))
}

// Validate scores survey results against ground truth. Networks missing
// from the ground truth are skipped.
func Validate(results []SurveyResult, truth GroundTruth) *Validation {
	v := &Validation{}
	for _, r := range results {
		filtered, known := truth[r.Label]
		if !known {
			continue
		}
		switch {
		case r.Report.Err != nil:
			v.Errored = append(v.Errored, r.Label)
		case r.Report.Intercepted && filtered:
			v.TruePositives = append(v.TruePositives, r.Label)
		case !r.Report.Intercepted && !filtered:
			v.TrueNegatives = append(v.TrueNegatives, r.Label)
		case r.Report.Intercepted && !filtered:
			v.FalsePositives = append(v.FalsePositives, r.Label)
		default:
			v.FalseNegatives = append(v.FalseNegatives, r.Label)
		}
	}
	for _, s := range [][]string{v.TruePositives, v.TrueNegatives, v.FalsePositives, v.FalseNegatives, v.Errored} {
		sort.Strings(s)
	}
	return v
}

// EvidenceHistogram tallies symptom kinds across a survey — which
// middlebox behaviours dominate in the measured population.
func EvidenceHistogram(results []SurveyResult) map[string]int {
	out := make(map[string]int)
	for _, r := range results {
		if r.Report == nil {
			continue
		}
		seen := make(map[string]bool)
		for _, e := range r.Report.Evidence {
			if !seen[e.Kind] {
				seen[e.Kind] = true
				out[e.Kind]++
			}
		}
	}
	return out
}

// FormatHistogram renders the histogram sorted by count then kind.
func FormatHistogram(h map[string]int) string {
	type kv struct {
		k string
		n int
	}
	rows := make([]kv, 0, len(h))
	for k, n := range h {
		rows = append(rows, kv{k, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].k < rows[j].k
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %d\n", r.k, r.n)
	}
	return b.String()
}
