package proxydetect

import (
	"context"
	"strings"
	"testing"

	"filtermap/internal/netsim"
)

func mkResult(label string, intercepted bool, err error) SurveyResult {
	rep := &Report{Intercepted: intercepted, Err: err}
	if intercepted {
		rep.Evidence = []Evidence{{Kind: KindViaAdded, Detail: "x"}}
	}
	return SurveyResult{Label: label, Report: rep}
}

func TestValidatePerfectDetector(t *testing.T) {
	results := []SurveyResult{
		mkResult("filtered-1", true, nil),
		mkResult("filtered-2", true, nil),
		mkResult("clean-1", false, nil),
	}
	truth := GroundTruth{"filtered-1": true, "filtered-2": true, "clean-1": false}
	v := Validate(results, truth)
	if v.Precision() != 1 || v.Recall() != 1 {
		t.Fatalf("perfect detector scored %s", v.Summary())
	}
	if len(v.TruePositives) != 2 || len(v.TrueNegatives) != 1 {
		t.Fatalf("counts = %s", v.Summary())
	}
}

func TestValidateMisses(t *testing.T) {
	results := []SurveyResult{
		mkResult("filtered-1", false, nil), // missed
		mkResult("clean-1", true, nil),     // overflagged
		mkResult("unknown", true, nil),     // not in truth: ignored
		mkResult("broken", false, context.DeadlineExceeded),
	}
	truth := GroundTruth{"filtered-1": true, "clean-1": false, "broken": true}
	v := Validate(results, truth)
	if len(v.FalseNegatives) != 1 || v.FalseNegatives[0] != "filtered-1" {
		t.Fatalf("fn = %v", v.FalseNegatives)
	}
	if len(v.FalsePositives) != 1 || v.FalsePositives[0] != "clean-1" {
		t.Fatalf("fp = %v", v.FalsePositives)
	}
	if len(v.Errored) != 1 {
		t.Fatalf("errored = %v", v.Errored)
	}
	if v.Precision() != 0 || v.Recall() != 0 {
		t.Fatalf("scores = %s", v.Summary())
	}
}

func TestValidateEdgeScores(t *testing.T) {
	// Nothing flagged, nothing filtered: both scores defined as 1.
	v := Validate([]SurveyResult{mkResult("clean", false, nil)}, GroundTruth{"clean": false})
	if v.Precision() != 1 || v.Recall() != 1 {
		t.Fatalf("empty scores = %s", v.Summary())
	}
}

func TestValidateAgainstLiveFixture(t *testing.T) {
	f := newFixture(t)
	results := Survey(context.Background(), f.refHost, mapOf(f))
	truth := GroundTruth{"clean": false, "proxied": true, "blocked": true}
	v := Validate(results, truth)
	if v.Precision() != 1 || v.Recall() != 1 {
		t.Fatalf("live fixture scored %s", v.Summary())
	}
}

func mapOf(f *fixture) map[string]*netsim.Host {
	return map[string]*netsim.Host{
		"clean":   f.clean,
		"proxied": f.proxied,
		"blocked": f.blocked,
	}
}

func TestEvidenceHistogram(t *testing.T) {
	f := newFixture(t)
	results := Survey(context.Background(), f.refHost, mapOf(f))
	h := EvidenceHistogram(results)
	if h[KindShortCircuited] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	if h[KindViaAdded] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	out := FormatHistogram(h)
	if !strings.Contains(out, KindViaAdded) {
		t.Fatalf("formatted = %q", out)
	}
}
