// Package proxydetect implements the paper's future-work direction (§7):
// general-purpose transparent-proxy detection in the style of Netalyzr
// [12, 17], for which the confirmation methodology "can provide a useful
// ground truth".
//
// The technique needs no product signatures: a client inside the network
// under test fetches a reference server the researchers control. The
// server echoes the request exactly as received; the client compares what
// arrived with what it sent, and the response with what the server
// produced. Any in-path middlebox reveals itself by what it touches —
// added Via/X-Forwarded-For headers, rewritten or reordered headers,
// answered-without-origin-contact (block pages), or modified bodies.
//
// Against the simulated world this detector flags every filtering ISP of
// the study without knowing any vendor signatures — exactly the
// "scalable technique [using] our methodology ... as ground truth" the
// paper calls for.
package proxydetect

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
)

// probeMarker is a header no real client or origin uses; middleboxes that
// drop or rewrite unknown headers reveal themselves through it.
const probeMarker = "X-Proxydetect-Nonce"

// EchoPath is the reference server's echo endpoint.
const EchoPath = "/echo"

// EchoHandler returns the reference-server handler: it reflects the
// request line and every header (in wire order and case) in the body,
// plus a content hash so body tampering is detectable.
func EchoHandler() httpwire.Handler {
	return httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
		var b strings.Builder
		fmt.Fprintf(&b, "method=%s target=%s proto=%s\n", req.Method, req.Target, req.Proto)
		for _, f := range req.Header.Fields() {
			fmt.Fprintf(&b, "hdr:%s: %s\n", f.Name, f.Value)
		}
		body := b.String()
		sum := sha256.Sum256([]byte(body))
		hdr := httpwire.NewHeader(
			"Content-Type", "text/plain; charset=utf-8",
			"X-Echo-Digest", hex.EncodeToString(sum[:]),
		)
		return httpwire.NewResponse(200, hdr, []byte(body))
	})
}

// Evidence is one observed middlebox symptom.
type Evidence struct {
	// Kind is a stable symptom identifier.
	Kind string
	// Detail is human-readable.
	Detail string
}

// Symptom kinds.
const (
	KindViaAdded        = "via-header-added"
	KindHeaderInjected  = "header-injected"
	KindMarkerDropped   = "probe-header-dropped"
	KindMarkerRewritten = "probe-header-rewritten"
	KindShortCircuited  = "origin-never-contacted"
	KindBodyTampered    = "body-tampered"
	KindDigestMismatch  = "digest-mismatch"
)

// Report is the outcome of one detection run.
type Report struct {
	// Intercepted reports whether any middlebox symptom was observed.
	Intercepted bool
	// Evidence lists the symptoms, sorted by kind.
	Evidence []Evidence
	// Err is the transport error if the probe could not complete at all.
	Err error
}

// Summary renders the evidence compactly.
func (r *Report) Summary() string {
	if r.Err != nil {
		return "probe failed: " + r.Err.Error()
	}
	if !r.Intercepted {
		return "no middlebox observed"
	}
	kinds := make([]string, len(r.Evidence))
	for i, e := range r.Evidence {
		kinds[i] = e.Kind
	}
	return "intercepted: " + strings.Join(kinds, ", ")
}

// Detector probes for transparent proxies from a vantage host.
type Detector struct {
	// Vantage is the client position (inside the network under test).
	Vantage *netsim.Host
	// RefHost is the reference server's hostname (must serve EchoHandler
	// on port 80 at EchoPath).
	RefHost string
	// Timeout bounds the probe (default 10s).
	Timeout time.Duration
}

// Detect runs one probe.
func (d *Detector) Detect(ctx context.Context) *Report {
	timeout := d.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	nonce := fmt.Sprintf("pd-%d", time.Now().UnixNano())
	req, err := httpwire.NewRequest("GET", "http://"+d.RefHost+EchoPath)
	if err != nil {
		return &Report{Err: err}
	}
	req.Header.Add(probeMarker, nonce)
	req.Header.Add("Connection", "close")

	conn, err := d.Vantage.DialHost(ctx, d.RefHost, 80)
	if err != nil {
		return &Report{Err: fmt.Errorf("proxydetect: dial: %w", err)}
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl) //nolint:errcheck // best-effort
	}
	if _, err := req.WriteTo(conn); err != nil {
		return &Report{Err: fmt.Errorf("proxydetect: write: %w", err)}
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn), false)
	if err != nil {
		return &Report{Err: fmt.Errorf("proxydetect: read: %w", err)}
	}
	return Analyze(req, resp, nonce)
}

// Analyze compares the sent request with the reference server's echo and
// the response envelope, collecting middlebox evidence. It is exposed
// separately so recorded exchanges can be analyzed offline.
func Analyze(sent *httpwire.Request, resp *httpwire.Response, nonce string) *Report {
	rep := &Report{}
	add := func(kind, format string, args ...any) {
		rep.Evidence = append(rep.Evidence, Evidence{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}

	body := string(resp.Body)
	echoed := parseEcho(body)

	// Did the origin ever see the request? An echo body always carries
	// the method line; block pages and other short-circuit responses do
	// not.
	if !strings.HasPrefix(body, "method=") {
		add(KindShortCircuited, "response is not the reference echo (status %d, %d bytes)", resp.StatusCode, len(resp.Body))
		rep.Intercepted = true
		sort.Slice(rep.Evidence, func(i, j int) bool { return rep.Evidence[i].Kind < rep.Evidence[j].Kind })
		return rep
	}

	// Digest check: body tampering between origin and client.
	if digest := resp.Header.Get("X-Echo-Digest"); digest != "" {
		sum := sha256.Sum256(resp.Body)
		if hex.EncodeToString(sum[:]) != digest {
			add(KindDigestMismatch, "body digest mismatch")
		}
	}

	// Proxy-added headers on the response.
	if via := resp.Header.Get("Via"); via != "" {
		add(KindViaAdded, "response Via: %s", via)
	}

	// Marker fate on the request path.
	markerVal, markerSeen := echoed[strings.ToLower(probeMarker)]
	switch {
	case !markerSeen:
		add(KindMarkerDropped, "origin never received %s", probeMarker)
	case markerVal != nonce:
		add(KindMarkerRewritten, "origin received %s=%q, sent %q", probeMarker, markerVal, nonce)
	}

	// Headers the origin saw that the client never sent.
	sentNames := make(map[string]bool)
	for _, f := range sent.Header.Fields() {
		sentNames[strings.ToLower(f.Name)] = true
	}
	var injected []string
	for name := range echoed {
		if !sentNames[name] && !benignAutoHeader(name) {
			injected = append(injected, name)
		}
	}
	sort.Strings(injected)
	for _, name := range injected {
		add(KindHeaderInjected, "origin saw injected header %q = %q", name, echoed[name])
	}

	rep.Intercepted = len(rep.Evidence) > 0
	sort.Slice(rep.Evidence, func(i, j int) bool { return rep.Evidence[i].Kind < rep.Evidence[j].Kind })
	return rep
}

// benignAutoHeader reports headers legitimately added by well-behaved
// clients/stacks rather than by interception.
func benignAutoHeader(name string) bool {
	switch name {
	case "content-length", "user-agent":
		return true
	default:
		return false
	}
}

// parseEcho extracts the header map the origin reported, lowercased.
func parseEcho(body string) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, "hdr:")
		if !ok {
			continue
		}
		name, value, ok := strings.Cut(rest, ": ")
		if !ok {
			continue
		}
		out[strings.ToLower(name)] = value
	}
	return out
}

// SurveyResult pairs a network label with its detection report.
type SurveyResult struct {
	Label  string
	Report *Report
}

// Survey probes from several vantages against one reference server and
// returns per-network reports — the scalable sweep §7 envisions, with the
// per-product confirmations of §4 as its ground truth.
func Survey(ctx context.Context, refHost string, vantages map[string]*netsim.Host) []SurveyResult {
	labels := make([]string, 0, len(vantages))
	for l := range vantages {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]SurveyResult, 0, len(labels))
	for _, label := range labels {
		d := &Detector{Vantage: vantages[label], RefHost: refHost}
		out = append(out, SurveyResult{Label: label, Report: d.Detect(ctx)})
	}
	return out
}
