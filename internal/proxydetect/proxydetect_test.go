package proxydetect

import (
	"bufio"
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
)

// fixture: a reference echo server, a clean ISP, a via-adding proxy ISP,
// and a blocking ISP.
type fixture struct {
	net     *netsim.Network
	refHost string
	clean   *netsim.Host
	proxied *netsim.Host
	blocked *netsim.Host
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := netsim.New(nil)
	t.Cleanup(n.Close)

	ref, err := n.AddHost(netip.MustParseAddr("192.0.2.1"), "echo.ref.example", nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ref.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: EchoHandler()}
	go srv.Serve(l) //nolint:errcheck // ends with listener

	mkISP := func(name string, asn int, cidr, hostIP string, ic netsim.Interceptor) *netsim.Host {
		as, err := n.AddAS(asn, name, "XX", netip.MustParsePrefix(cidr))
		if err != nil {
			t.Fatal(err)
		}
		isp, err := n.AddISP(name, as)
		if err != nil {
			t.Fatal(err)
		}
		h, err := n.AddHost(netip.MustParseAddr(hostIP), "", isp)
		if err != nil {
			t.Fatal(err)
		}
		isp.SetInterceptor(ic)
		return h
	}

	relay, err := n.AddHost(netip.MustParseAddr("192.0.2.9"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	clean := mkISP("CleanNet", 64501, "10.1.0.0/16", "10.1.2.2", nil)
	proxied := mkISP("ProxyNet", 64502, "10.2.0.0/16", "10.2.2.2", viaProxy{relay: relay})
	blocked := mkISP("BlockNet", 64503, "10.3.0.0/16", "10.3.2.2", blockAll{})

	return &fixture{net: n, refHost: "echo.ref.example", clean: clean, proxied: proxied, blocked: blocked}
}

// viaProxy forwards requests through a neutral relay host but adds Via
// and X-Forwarded-For and strips unknown headers — a typical enterprise
// proxy.
type viaProxy struct{ relay *netsim.Host }

func (p viaProxy) Intercept(info netsim.DialInfo) netsim.Handler {
	if info.Port != 80 {
		return nil
	}
	return netsim.HandlerFunc(func(conn net.Conn, info netsim.DialInfo) {
		defer conn.Close()
		req, err := httpwire.ReadRequest(bufio.NewReader(conn))
		if err != nil {
			return
		}
		out := req.Clone()
		out.Header.Del(probeMarker) // paranoid middlebox strips unknown headers
		out.Header.Set("Via", "1.1 corporate-proxy")
		out.Header.Set("X-Forwarded-For", info.Src.String())
		out.Header.Set("Connection", "close")

		up, err := p.relay.Dial(context.Background(), info.Dst, info.Port)
		if err != nil {
			return
		}
		defer up.Close()
		if _, err := out.WriteTo(up); err != nil {
			return
		}
		resp, err := httpwire.ReadResponse(bufio.NewReader(up), false)
		if err != nil {
			return
		}
		resp.Header.Set("Via", "1.1 corporate-proxy")
		resp.Header.Set("Connection", "close")
		resp.WriteTo(conn) //nolint:errcheck // test
	})
}

// blockAll short-circuits everything with a block page.
type blockAll struct{}

func (blockAll) Intercept(info netsim.DialInfo) netsim.Handler {
	if info.Port != 80 {
		return nil
	}
	return netsim.HandlerFunc(func(conn net.Conn, _ netsim.DialInfo) {
		defer conn.Close()
		resp := httpwire.NewResponse(403, httpwire.NewHeader("Connection", "close"), []byte("<h1>blocked</h1>"))
		resp.WriteTo(conn) //nolint:errcheck // test
	})
}

func TestDetectClean(t *testing.T) {
	f := newFixture(t)
	d := &Detector{Vantage: f.clean, RefHost: f.refHost, Timeout: 3 * time.Second}
	rep := d.Detect(context.Background())
	if rep.Err != nil {
		t.Fatalf("probe error: %v", rep.Err)
	}
	if rep.Intercepted {
		t.Fatalf("clean network flagged: %s", rep.Summary())
	}
}

func TestDetectViaProxyEndToEnd(t *testing.T) {
	f := newFixture(t)
	d := &Detector{Vantage: f.proxied, RefHost: f.refHost, Timeout: 3 * time.Second}
	rep := d.Detect(context.Background())
	if rep.Err != nil {
		t.Fatalf("probe error: %v", rep.Err)
	}
	if !rep.Intercepted {
		t.Fatal("proxying network not flagged")
	}
	kinds := map[string]bool{}
	for _, e := range rep.Evidence {
		kinds[e.Kind] = true
	}
	if !kinds[KindViaAdded] || !kinds[KindMarkerDropped] || !kinds[KindHeaderInjected] {
		t.Fatalf("evidence kinds = %v, want via-added + marker-dropped + header-injected", kinds)
	}
}

func TestDetectBlocked(t *testing.T) {
	f := newFixture(t)
	d := &Detector{Vantage: f.blocked, RefHost: f.refHost, Timeout: 3 * time.Second}
	rep := d.Detect(context.Background())
	if rep.Err != nil {
		t.Fatalf("probe error: %v", rep.Err)
	}
	if !rep.Intercepted {
		t.Fatal("blocking network not flagged")
	}
	if rep.Evidence[0].Kind != KindShortCircuited {
		t.Fatalf("evidence = %+v", rep.Evidence)
	}
	if !strings.Contains(rep.Summary(), KindShortCircuited) {
		t.Fatalf("summary = %q", rep.Summary())
	}
}

func TestAnalyzeViaAndInjectedHeaders(t *testing.T) {
	sent, _ := httpwire.NewRequest("GET", "http://echo.ref.example/echo")
	sent.Header.Add(probeMarker, "nonce-1")
	// Simulate an echo body reporting proxy-modified headers.
	body := "method=GET target=/echo proto=HTTP/1.1\n" +
		"hdr:Host: echo.ref.example\n" +
		"hdr:X-Proxydetect-Nonce: nonce-1\n" +
		"hdr:Via: 1.1 corp-proxy\n" +
		"hdr:X-Forwarded-For: 10.2.2.2\n"
	resp := httpwire.NewResponse(200, httpwire.NewHeader("Via", "1.1 corp-proxy"), []byte(body))
	rep := Analyze(sent, resp, "nonce-1")
	if !rep.Intercepted {
		t.Fatal("not flagged")
	}
	kinds := map[string]bool{}
	for _, e := range rep.Evidence {
		kinds[e.Kind] = true
	}
	if !kinds[KindViaAdded] {
		t.Error("missing via-added evidence")
	}
	if !kinds[KindHeaderInjected] {
		t.Error("missing injected-header evidence (via/xff seen by origin)")
	}
}

func TestAnalyzeMarkerDropped(t *testing.T) {
	sent, _ := httpwire.NewRequest("GET", "http://r/echo")
	sent.Header.Add(probeMarker, "nonce-2")
	body := "method=GET target=/echo proto=HTTP/1.1\nhdr:Host: r\n"
	resp := httpwire.NewResponse(200, nil, []byte(body))
	rep := Analyze(sent, resp, "nonce-2")
	if !rep.Intercepted {
		t.Fatal("not flagged")
	}
	if rep.Evidence[0].Kind != KindMarkerDropped {
		t.Fatalf("evidence = %+v", rep.Evidence)
	}
}

func TestAnalyzeMarkerRewritten(t *testing.T) {
	sent, _ := httpwire.NewRequest("GET", "http://r/echo")
	sent.Header.Add(probeMarker, "nonce-3")
	body := "method=GET target=/echo proto=HTTP/1.1\nhdr:X-Proxydetect-Nonce: tampered\n"
	resp := httpwire.NewResponse(200, nil, []byte(body))
	rep := Analyze(sent, resp, "nonce-3")
	found := false
	for _, e := range rep.Evidence {
		if e.Kind == KindMarkerRewritten {
			found = true
		}
	}
	if !found {
		t.Fatalf("evidence = %+v", rep.Evidence)
	}
}

func TestAnalyzeCleanExchange(t *testing.T) {
	sent, _ := httpwire.NewRequest("GET", "http://r/echo")
	sent.Header.Add(probeMarker, "nonce-4")
	sent.Header.Add("Connection", "close")
	body := "method=GET target=/echo proto=HTTP/1.1\n" +
		"hdr:Host: r\nhdr:X-Proxydetect-Nonce: nonce-4\nhdr:Connection: close\n"
	resp := httpwire.NewResponse(200, nil, []byte(body))
	rep := Analyze(sent, resp, "nonce-4")
	if rep.Intercepted {
		t.Fatalf("clean exchange flagged: %+v", rep.Evidence)
	}
}

func TestSurveyOrdering(t *testing.T) {
	f := newFixture(t)
	results := Survey(context.Background(), f.refHost, map[string]*netsim.Host{
		"z-clean":   f.clean,
		"a-blocked": f.blocked,
	})
	if len(results) != 2 || results[0].Label != "a-blocked" || results[1].Label != "z-clean" {
		t.Fatalf("survey order = %+v", results)
	}
	if !results[0].Report.Intercepted || results[1].Report.Intercepted {
		t.Fatal("survey verdicts wrong")
	}
}

func TestSummaryOnError(t *testing.T) {
	rep := &Report{Err: context.DeadlineExceeded}
	if !strings.Contains(rep.Summary(), "probe failed") {
		t.Fatalf("summary = %q", rep.Summary())
	}
	clean := &Report{}
	if clean.Summary() != "no middlebox observed" {
		t.Fatalf("summary = %q", clean.Summary())
	}
}
