package report

import (
	"fmt"
	"strings"

	"filtermap/internal/discovery"
	"filtermap/internal/engine"
	"filtermap/internal/urllist"
)

// DiscoveryTarget pairs one characterization target's identity with its
// crawl report. It mirrors world.TargetDiscovery without importing the
// world package (report stays a pure rendering layer).
type DiscoveryTarget struct {
	Country string
	ISP     string
	ASN     int
	Report  *discovery.Report
}

// effectiveCaps resolves zero crawl caps to the discovery defaults, so
// every renderer prints the caps the crawl actually ran under.
func effectiveCaps(rounds, budget int) (int, int) {
	if rounds <= 0 {
		rounds = discovery.DefaultRounds
	}
	if budget <= 0 {
		budget = discovery.DefaultBudget
	}
	return rounds, budget
}

// Discovery renders the discovery crawl summary as text: per-target
// totals, per-round detail, the novel blocked URLs the curated lists
// miss, and the synthetic "discovered" list they assemble into. Zero
// rounds/budget print as the discovery defaults.
func Discovery(rounds, budget int, targets []DiscoveryTarget, discovered urllist.List) string {
	rounds, budget = effectiveCaps(rounds, budget)
	var b strings.Builder
	fmt.Fprintf(&b, "Discovery: crawl-based blocked-URL discovery (rounds=%d, budget=%d)\n", rounds, budget)

	summary := &Table{
		Headers: []string{"Target", "Seeds", "Probed", "Blocked", "Novel", "Budget exhausted"},
	}
	detail := &Table{
		Title:   "Round detail",
		Headers: []string{"Target", "Round", "Probed", "Blocked", "Accessible", "New candidates"},
	}
	novel := &Table{
		Title:   "Novel blocked URLs (absent from every curated list)",
		Headers: []string{"Target", "URL", "Category", "Product", "Round", "Via"},
	}
	for _, t := range targets {
		label := fmt.Sprintf("%s (%s, AS %d)", t.ISP, t.Country, t.ASN)
		rep := t.Report
		blocked := 0
		for _, r := range rep.Rounds {
			blocked += r.Blocked
			detail.AddRow(label,
				fmt.Sprintf("%d", r.Round),
				fmt.Sprintf("%d", r.Probed),
				fmt.Sprintf("%d", r.Blocked),
				fmt.Sprintf("%d", r.Accessible),
				fmt.Sprintf("%d", r.NewCandidates),
			)
		}
		exhausted := "no"
		if rep.BudgetExhausted {
			exhausted = "yes"
		}
		summary.AddRow(label,
			fmt.Sprintf("%d", rep.Seeds),
			fmt.Sprintf("%d", rep.Probed),
			fmt.Sprintf("%d", blocked),
			fmt.Sprintf("%d", len(rep.Novel())),
			exhausted,
		)
		for _, f := range rep.Novel() {
			via := f.Source
			if via == "" {
				via = "(seed)"
			}
			novel.AddRow(label, f.URL, f.Category, f.Product, fmt.Sprintf("%d", f.Round), via)
		}
	}
	b.WriteString(summary.String())
	b.WriteByte('\n')
	b.WriteString(detail.String())
	b.WriteByte('\n')
	b.WriteString(novel.String())
	fmt.Fprintf(&b, "\nDiscovered list: %d unique URLs under synthetic theme %q.\n",
		len(discovered.Entries), urllist.ThemeDiscovered)
	var degraded []string
	for _, t := range targets {
		if t.Report.Degraded {
			degraded = append(degraded, fmt.Sprintf("  %s (%s, AS %d): %d degraded probe(s)",
				t.ISP, t.Country, t.ASN, len(t.Report.Errors)))
		}
	}
	if len(degraded) > 0 {
		fmt.Fprintf(&b, "DEGRADED: %d crawl(s) had transport-degraded probes:\n%s\n",
			len(degraded), strings.Join(degraded, "\n"))
	}
	return b.String()
}

// DiscoveryDoc is the JSON rendering of a discovery run.
type DiscoveryDoc struct {
	// Rounds and Budget are the effective per-target crawl caps.
	Rounds  int                  `json:"rounds"`
	Budget  int                  `json:"budget"`
	Targets []DiscoveryTargetDoc `json:"targets"`
	// Discovered is the deduplicated, sorted synthetic "discovered" list
	// assembled from the targets' novel findings.
	Discovered []DiscoveredURLDoc `json:"discovered"`
	// Degraded reports that at least one target's crawl was degraded.
	Degraded bool `json:"degraded,omitempty"`
	// Stats optionally carries the engine's per-stage execution snapshot.
	Stats *engine.Snapshot `json:"stats,omitempty"`
}

// DiscoveryTargetDoc is one target's crawl outcome.
type DiscoveryTargetDoc struct {
	Country         string                `json:"country"`
	ISP             string                `json:"isp"`
	ASN             int                   `json:"asn"`
	Seeds           int                   `json:"seeds"`
	Probed          int                   `json:"probed"`
	BudgetExhausted bool                  `json:"budget_exhausted"`
	Rounds          []DiscoveryRoundDoc   `json:"rounds"`
	Findings        []DiscoveryFindingDoc `json:"findings"`
	// Errors lists transport-degraded probes ("URL: detail") in probe
	// order; Degraded marks the crawl as partial.
	Errors   []string `json:"errors,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
}

// DiscoveryRoundDoc is one crawl round's statistics.
type DiscoveryRoundDoc struct {
	Round         int `json:"round"`
	Probed        int `json:"probed"`
	Blocked       int `json:"blocked"`
	Accessible    int `json:"accessible"`
	NewCandidates int `json:"new_candidates"`
}

// DiscoveryFindingDoc is one blocked URL a crawl observed.
type DiscoveryFindingDoc struct {
	URL      string `json:"url"`
	Domain   string `json:"domain"`
	Product  string `json:"product"`
	Pattern  string `json:"pattern"`
	Category string `json:"category,omitempty"`
	Source   string `json:"source,omitempty"`
	Round    int    `json:"round"`
	Novel    bool   `json:"novel"`
}

// DiscoveredURLDoc is one entry of the synthetic "discovered" list.
type DiscoveredURLDoc struct {
	URL      string `json:"url"`
	Domain   string `json:"domain"`
	Category string `json:"category,omitempty"`
}

// DiscoveryJSON builds the discovery document. Zero rounds/budget are
// recorded as the discovery defaults.
func DiscoveryJSON(rounds, budget int, targets []DiscoveryTarget, discovered urllist.List) DiscoveryDoc {
	rounds, budget = effectiveCaps(rounds, budget)
	doc := DiscoveryDoc{Rounds: rounds, Budget: budget}
	for _, t := range targets {
		td := DiscoveryTargetDoc{
			Country:         t.Country,
			ISP:             t.ISP,
			ASN:             t.ASN,
			Seeds:           t.Report.Seeds,
			Probed:          t.Report.Probed,
			BudgetExhausted: t.Report.BudgetExhausted,
			Errors:          t.Report.Errors,
			Degraded:        t.Report.Degraded,
		}
		for _, r := range t.Report.Rounds {
			td.Rounds = append(td.Rounds, DiscoveryRoundDoc(r))
		}
		for _, f := range t.Report.Findings {
			td.Findings = append(td.Findings, DiscoveryFindingDoc{
				URL:      f.URL,
				Domain:   f.Domain,
				Product:  f.Product,
				Pattern:  f.Pattern,
				Category: f.Category,
				Source:   f.Source,
				Round:    f.Round,
				Novel:    f.Novel,
			})
		}
		if td.Degraded {
			doc.Degraded = true
		}
		doc.Targets = append(doc.Targets, td)
	}
	for _, e := range discovered.Entries {
		doc.Discovered = append(doc.Discovered, DiscoveredURLDoc{
			URL:      e.URL,
			Domain:   e.Domain,
			Category: e.Category,
		})
	}
	return doc
}
