package report

import (
	"sort"

	"filtermap/internal/characterize"
	"filtermap/internal/confirm"
	"filtermap/internal/engine"
	"filtermap/internal/identify"
	"filtermap/internal/urllist"
)

// This file defines the machine-readable counterparts of the text
// renderers: structured documents with stable JSON field names, shared by
// the fmserve HTTP API and the CLIs' -json flags. The text tables remain
// the golden-file surface; these documents are the service surface.

// Table1Doc is the JSON rendering of Table 1.
type Table1Doc struct {
	Rows []Table1RowDoc `json:"rows"`
}

// Table1RowDoc is one product-inventory row.
type Table1RowDoc struct {
	Company            string `json:"company"`
	Headquarters       string `json:"headquarters"`
	ProductDescription string `json:"product_description"`
	PreviouslyObserved string `json:"previously_observed"`
}

// Table1JSON builds the Table 1 document from the default inventory.
func Table1JSON() Table1Doc {
	var doc Table1Doc
	for _, r := range DefaultProductInventory() {
		doc.Rows = append(doc.Rows, Table1RowDoc{
			Company:            r.Company,
			Headquarters:       r.Headquarters,
			ProductDescription: r.ProductDescription,
			PreviouslyObserved: r.PreviouslyObserved,
		})
	}
	return doc
}

// Table2Doc is the JSON rendering of Table 2.
type Table2Doc struct {
	Products []Table2RowDoc `json:"products"`
}

// Table2RowDoc is one product's keywords and signatures.
type Table2RowDoc struct {
	Product    string   `json:"product"`
	Keywords   []string `json:"keywords"`
	Signatures []string `json:"signatures"`
	// Mechanisms lists the product's mechanism-signature descriptions
	// (DNS/RST/SNI wire quirks). Populated only by Table2MechanismsJSON;
	// omitted — keeping HTTP-only documents byte-identical — otherwise.
	Mechanisms []string `json:"mechanisms,omitempty"`
}

// Table2JSON builds the Table 2 document from keyword and signature
// descriptions (same inputs as the text renderer).
func Table2JSON(keywords map[string][]string, signatures map[string][]string) Table2Doc {
	products := make([]string, 0, len(keywords))
	for p := range keywords {
		products = append(products, p)
	}
	sort.Strings(products)
	var doc Table2Doc
	for _, p := range products {
		doc.Products = append(doc.Products, Table2RowDoc{
			Product:    p,
			Keywords:   keywords[p],
			Signatures: signatures[p],
		})
	}
	return doc
}

// IdentifyDoc is the JSON rendering of the §3 report (Figure 1 plus the
// per-installation detail).
type IdentifyDoc struct {
	// ProductCountries maps product name -> sorted country codes (the
	// Figure 1 content).
	ProductCountries  map[string][]string `json:"product_countries"`
	CandidateCount    int                 `json:"candidate_count"`
	ValidatedCount    int                 `json:"validated_count"`
	FalsePositiveRate float64             `json:"false_positive_rate"`
	Installations     []InstallationDoc   `json:"installations"`
	QueryErrors       []QueryErrorDoc     `json:"query_errors,omitempty"`
	// StageErrors lists stage-level failures the run survived; Degraded
	// marks the report as partial (any stage or query error).
	StageErrors []StageErrorDoc `json:"stage_errors,omitempty"`
	Degraded    bool            `json:"degraded,omitempty"`
	// Stats optionally carries the engine's per-stage execution snapshot
	// (machine-readable -stats / ?stats=1; omitted unless requested).
	Stats *engine.Snapshot `json:"stats,omitempty"`
}

// InstallationDoc is one validated installation.
type InstallationDoc struct {
	IP       string   `json:"ip"`
	Hostname string   `json:"hostname,omitempty"`
	Products []string `json:"products"`
	Country  string   `json:"country,omitempty"`
	ASN      int      `json:"asn,omitempty"`
	ASName   string   `json:"as_name,omitempty"`
}

// QueryErrorDoc is one failed keyword query from the fan-out.
type QueryErrorDoc struct {
	Product string `json:"product"`
	Query   string `json:"query"`
	Error   string `json:"error"`
}

// StageErrorDoc is one survived pipeline-stage failure.
type StageErrorDoc struct {
	Stage  string `json:"stage"`
	Target string `json:"target"`
	Error  string `json:"error"`
}

// IdentifyJSON builds the identification document from a §3 report.
func IdentifyJSON(rep *identify.Report) IdentifyDoc {
	doc := IdentifyDoc{
		ProductCountries:  rep.ProductCountries(),
		CandidateCount:    rep.CandidateCount,
		ValidatedCount:    rep.ValidatedCount,
		FalsePositiveRate: rep.FalsePositiveRate(),
	}
	for _, inst := range rep.Installations {
		doc.Installations = append(doc.Installations, InstallationDoc{
			IP:       inst.Addr.String(),
			Hostname: inst.Hostname,
			Products: inst.Products,
			Country:  inst.Country,
			ASN:      inst.ASN,
			ASName:   inst.ASName,
		})
	}
	for _, qe := range rep.QueryErrors {
		doc.QueryErrors = append(doc.QueryErrors, QueryErrorDoc{
			Product: qe.Product,
			Query:   qe.Query,
			Error:   qe.Err.Error(),
		})
	}
	for _, se := range rep.Errors {
		doc.StageErrors = append(doc.StageErrors, StageErrorDoc{
			Stage:  se.Stage,
			Target: se.Target,
			Error:  se.Err,
		})
	}
	doc.Degraded = rep.Degraded
	return doc
}

// Table3Doc is the JSON rendering of the confirmation case studies.
type Table3Doc struct {
	Rows []Table3RowDoc `json:"rows"`
	// Degraded reports that at least one campaign ran on partial evidence.
	Degraded bool `json:"degraded,omitempty"`
	// Stats optionally carries the engine's per-stage execution snapshot.
	Stats *engine.Snapshot `json:"stats,omitempty"`
}

// Table3RowDoc is one case study outcome.
type Table3RowDoc struct {
	Product  string `json:"product"`
	Country  string `json:"country"`
	ISP      string `json:"isp"`
	ASN      int    `json:"asn"`
	Date     string `json:"date"`
	Category string `json:"category"`
	// Submitted and Domains render Table 3's "sites submitted" cell
	// (submitted/domains); Blocked counts submitted sites that turned
	// blocked in at least one re-test round.
	Submitted       int  `json:"submitted"`
	Domains         int  `json:"domains"`
	Blocked         int  `json:"blocked"`
	BlockedControls int  `json:"blocked_controls"`
	PreTest         bool `json:"pre_test"`
	PreTestClean    bool `json:"pre_test_clean"`
	Confirmed       bool `json:"confirmed"`
	// SubmitErrors and MeasurementErrors enumerate the campaign's partial
	// evidence; Degraded marks it.
	SubmitErrors      []string `json:"submit_errors,omitempty"`
	MeasurementErrors []string `json:"measurement_errors,omitempty"`
	Degraded          bool     `json:"degraded,omitempty"`
}

// Table3JSON builds the confirmation document from campaign outcomes.
func Table3JSON(outcomes []*confirm.Outcome) Table3Doc {
	var doc Table3Doc
	for _, o := range outcomes {
		c := o.Campaign
		row := Table3RowDoc{
			Product:           c.Product,
			Country:           c.Country,
			ISP:               c.ISP,
			ASN:               c.ASN,
			Date:              c.Date,
			Category:          c.CategoryLabel,
			Submitted:         len(o.Submitted),
			Domains:           len(o.Submitted) + len(o.Controls),
			Blocked:           o.BlockedSubmitted,
			BlockedControls:   o.BlockedControls,
			PreTest:           c.PreTest,
			PreTestClean:      o.PreTestClean,
			Confirmed:         o.Confirmed,
			MeasurementErrors: o.MeasurementErrors(),
			Degraded:          o.Degraded(),
		}
		for _, e := range o.SubmitErrors {
			row.SubmitErrors = append(row.SubmitErrors, e.Error())
		}
		if row.Degraded {
			doc.Degraded = true
		}
		doc.Rows = append(doc.Rows, row)
	}
	return doc
}

// Table4Doc is the JSON rendering of the blocked-content matrix plus the
// per-country blocked-URL detail behind it.
type Table4Doc struct {
	// Columns lists the six protected-speech research category codes in
	// Table 4 column order.
	Columns []Table4ColumnDoc  `json:"columns"`
	Rows    []Table4RowDoc     `json:"rows"`
	Reports []CountryReportDoc `json:"reports"`
	// Degraded reports that at least one run had partial measurements.
	Degraded bool `json:"degraded,omitempty"`
	// Stats optionally carries the engine's per-stage execution snapshot.
	Stats *engine.Snapshot `json:"stats,omitempty"`
}

// Table4ColumnDoc names one matrix column.
type Table4ColumnDoc struct {
	Code string `json:"code"`
	Name string `json:"name"`
}

// Table4RowDoc is one (product, location) matrix row.
type Table4RowDoc struct {
	Product string `json:"product"`
	Country string `json:"country"`
	ASN     int    `json:"asn"`
	// Blocked lists the blocked column codes, sorted.
	Blocked []string `json:"blocked"`
}

// CountryReportDoc is one characterization run's blocked detail.
type CountryReportDoc struct {
	Country string          `json:"country"`
	ISP     string          `json:"isp"`
	ASN     int             `json:"asn"`
	Blocked []BlockedURLDoc `json:"blocked"`
	// Errors lists transport-degraded measurements ("URL: detail");
	// Degraded marks the run as partial.
	Errors   []string `json:"errors,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
}

// BlockedURLDoc is one blocked list URL with its attribution.
type BlockedURLDoc struct {
	URL      string `json:"url"`
	Category string `json:"category"`
	Product  string `json:"product"`
	Pattern  string `json:"pattern"`
	FromList string `json:"from_list"`
}

// Table4JSON builds the characterization document from §5 reports.
func Table4JSON(reports []*characterize.Report) Table4Doc {
	var doc Table4Doc
	for _, code := range characterize.Table4Columns() {
		col := Table4ColumnDoc{Code: code, Name: code}
		if cat, ok := urllist.CategoryByCode(code); ok {
			col.Name = cat.Name
		}
		doc.Columns = append(doc.Columns, col)
	}
	for _, row := range characterize.Matrix(reports) {
		var blocked []string
		for _, code := range characterize.Table4Columns() {
			if row.Blocked[code] {
				blocked = append(blocked, code)
			}
		}
		doc.Rows = append(doc.Rows, Table4RowDoc{
			Product: row.Product,
			Country: row.Country,
			ASN:     row.ASN,
			Blocked: blocked,
		})
	}
	for _, rep := range reports {
		crd := CountryReportDoc{Country: rep.Country, ISP: rep.ISP, ASN: rep.ASN, Errors: rep.Errors, Degraded: rep.Degraded}
		for _, b := range rep.Blocked {
			crd.Blocked = append(crd.Blocked, BlockedURLDoc{
				URL:      b.Entry.URL,
				Category: b.Entry.Category,
				Product:  b.Product,
				Pattern:  b.Pattern,
				FromList: b.FromList,
			})
		}
		if rep.Degraded {
			doc.Degraded = true
		}
		doc.Reports = append(doc.Reports, crd)
	}
	return doc
}
