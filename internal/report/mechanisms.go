package report

import (
	"fmt"
	"sort"
	"strings"

	"filtermap/internal/characterize"
	"filtermap/internal/engine"
	"filtermap/internal/measurement"
	"filtermap/internal/mechanism"
	"filtermap/internal/urllist"
)

// This file renders the mechanism survey: which censorship mechanism
// (DNS poisoning, RST injection, SNI filtering — or the baseline HTTP
// block page) each ISP deploys, attributed to a product by its wire
// quirks. The text survey is the golden-file surface; MechanismsDoc is
// the fmserve / -json counterpart.

// MechanismTarget pairs one surveyed ISP with its probe results (the
// report-layer view of world.MechanismSurveyTarget).
type MechanismTarget struct {
	Country string
	ISP     string
	ASN     int
	Results []measurement.MechanismResult
}

// summary computes the target's aggregate once per renderer.
func (t *MechanismTarget) summary() measurement.MechanismSummary {
	return measurement.SummarizeMechanisms(t.Results)
}

// degradedDetail lists the target's inconclusive probes ("URL: detail").
func (t *MechanismTarget) degradedDetail() []string {
	var out []string
	for i := range t.Results {
		r := &t.Results[i]
		if detail, ok := r.Degraded(); ok {
			out = append(out, r.URL+": "+detail)
		}
		for _, p := range r.Probes {
			if p.Degraded != "" {
				out = append(out, fmt.Sprintf("%s: %s probe: %s", r.URL, p.Kind, p.Degraded))
			}
		}
	}
	return out
}

// MechanismSurvey renders the per-ISP mechanism findings: one row per
// attributed (mechanism, product) pair with its quirk evidence. Targets
// whose runs carried inconclusive probes get a DEGRADED footer.
func MechanismSurvey(targets []MechanismTarget) string {
	t := &Table{
		Title:   "Mechanism survey: censorship mechanisms and product attribution by ISP.",
		Headers: []string{"ISP", "Where", "Mechanism", "Product", "Evidence"},
	}
	tested, censored := 0, 0
	var degraded []string
	for i := range targets {
		tgt := &targets[i]
		where := fmt.Sprintf("%s (AS %d)", tgt.Country, tgt.ASN)
		s := tgt.summary()
		tested += s.Total
		censored += s.Censored
		if len(s.Findings) == 0 {
			t.AddRow(tgt.ISP, where, "-", "-", "none detected")
		}
		for _, f := range s.Findings {
			t.AddRow(tgt.ISP, where, string(f.Kind), f.Product, f.Evidence)
		}
		if detail := tgt.degradedDetail(); len(detail) > 0 {
			degraded = append(degraded, fmt.Sprintf("  %s (AS %d): %d inconclusive probe line(s)",
				tgt.ISP, tgt.ASN, len(detail)))
		}
	}
	out := t.String()
	out += fmt.Sprintf("%d ISP(s) surveyed, %d URL(s) tested, %d censored.\n",
		len(targets), tested, censored)
	if len(degraded) > 0 {
		out += fmt.Sprintf("DEGRADED: %d survey run(s) had inconclusive probes:\n%s\n",
			len(degraded), strings.Join(degraded, "\n"))
	}
	return out
}

// Table4Mechanisms renders the mechanism analog of Table 4: per ISP, the
// attributed product, the operative mechanism(s) — the column Table 4
// lacks because the paper only measured HTTP block pages — and which
// protected-speech research categories the mechanism censors.
func Table4Mechanisms(targets []MechanismTarget) string {
	cols := characterize.Table4Columns()
	headers := []string{"Product", "Where", "Mechanism"}
	for _, c := range cols {
		name := c
		if cat, ok := urllist.CategoryByCode(c); ok {
			name = cat.Name
		}
		headers = append(headers, name)
	}
	t := &Table{
		Title:   "Table 4 (mechanisms): Web content blocked via DNS/RST/SNI censorship.",
		Headers: headers,
	}
	catOf := globalCategoryIndex()
	for i := range targets {
		tgt := &targets[i]
		products, kinds, blocked := targetAttribution(tgt, catOf)
		cells := []string{
			strings.Join(products, ", "),
			fmt.Sprintf("%s (AS %d)", tgt.Country, tgt.ASN),
			strings.Join(kinds, "+"),
		}
		for _, c := range cols {
			if blocked[c] {
				cells = append(cells, "x")
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// globalCategoryIndex maps global-list URLs to research category codes.
func globalCategoryIndex() map[string]string {
	list := urllist.GlobalList()
	out := make(map[string]string, len(list.Entries))
	for _, e := range list.Entries {
		out[e.URL] = e.Category
	}
	return out
}

// targetAttribution derives one matrix row's cells: distinct products
// (sorted; "(unattributed)" when quirks matched nothing), distinct
// mechanism kinds (report order), and the censored category set.
func targetAttribution(tgt *MechanismTarget, catOf map[string]string) (products, kinds []string, blocked map[string]bool) {
	prodSet := make(map[string]bool)
	kindSet := make(map[mechanism.Kind]bool)
	blocked = make(map[string]bool)
	for i := range tgt.Results {
		r := &tgt.Results[i]
		if !r.Censored() {
			continue
		}
		p := r.MechProduct
		if p == "" {
			p = "(unattributed)"
		}
		prodSet[p] = true
		kindSet[r.Mechanism] = true
		// Probes that fired beyond the frontline mechanism (mixed
		// deployments) contribute to the Mechanism cell too.
		for _, probe := range r.Probes {
			if probe.Detected {
				kindSet[probe.Kind] = true
				if probe.Product != "" {
					prodSet[probe.Product] = true
				}
			}
		}
		if cat, ok := catOf[r.URL]; ok {
			blocked[cat] = true
		}
	}
	for p := range prodSet {
		products = append(products, p)
	}
	sort.Strings(products)
	for _, k := range mechanism.Kinds() {
		if kindSet[k] {
			kinds = append(kinds, string(k))
		}
	}
	if len(products) == 0 {
		products = []string{"-"}
	}
	if len(kinds) == 0 {
		kinds = []string{"-"}
	}
	return products, kinds, blocked
}

// MechanismsDoc is the machine-readable mechanism survey (fmserve's
// POST /v1/mechanisms encoding and fmrepro's -json form).
type MechanismsDoc struct {
	// Mechanisms holds one entry per surveyed ISP, in survey order.
	Mechanisms []MechanismISPDoc `json:"mechanisms"`
	// Degraded reports that at least one run had inconclusive probes.
	Degraded bool `json:"degraded,omitempty"`
	// Stats optionally carries the engine's per-stage execution snapshot.
	Stats *engine.Snapshot `json:"stats,omitempty"`
}

// MechanismISPDoc is one ISP's mechanism findings.
type MechanismISPDoc struct {
	ISP      string `json:"isp"`
	Country  string `json:"country"`
	ASN      int    `json:"asn"`
	Tested   int    `json:"tested"`
	Censored int    `json:"censored"`
	// Findings lists distinct (mechanism, product, evidence) attributions.
	Findings []MechanismFindingDoc `json:"findings,omitempty"`
	URLs     []MechanismURLDoc     `json:"urls"`
	// Degraded lists inconclusive probe detail; the run is partial when
	// non-empty.
	Degraded []string `json:"degraded,omitempty"`
}

// MechanismFindingDoc is one attributed mechanism observation.
type MechanismFindingDoc struct {
	Mechanism string `json:"mechanism"`
	Product   string `json:"product"`
	Evidence  string `json:"evidence,omitempty"`
}

// MechanismURLDoc is one URL's mechanism verdict.
type MechanismURLDoc struct {
	URL       string `json:"url"`
	Verdict   string `json:"verdict"`
	Mechanism string `json:"mechanism,omitempty"`
	Product   string `json:"product,omitempty"`
	Evidence  string `json:"evidence,omitempty"`
}

// MechanismsJSON builds the mechanism survey document.
func MechanismsJSON(targets []MechanismTarget) MechanismsDoc {
	var doc MechanismsDoc
	for i := range targets {
		tgt := &targets[i]
		s := tgt.summary()
		ispDoc := MechanismISPDoc{
			ISP: tgt.ISP, Country: tgt.Country, ASN: tgt.ASN,
			Tested: s.Total, Censored: s.Censored,
			Degraded: tgt.degradedDetail(),
		}
		for _, f := range s.Findings {
			ispDoc.Findings = append(ispDoc.Findings, MechanismFindingDoc{
				Mechanism: string(f.Kind), Product: f.Product, Evidence: f.Evidence,
			})
		}
		for j := range tgt.Results {
			r := &tgt.Results[j]
			ispDoc.URLs = append(ispDoc.URLs, MechanismURLDoc{
				URL:       r.URL,
				Verdict:   r.Verdict.String(),
				Mechanism: string(r.Mechanism),
				Product:   r.MechProduct,
				Evidence:  r.MechEvidence,
			})
		}
		if len(ispDoc.Degraded) > 0 {
			doc.Degraded = true
		}
		doc.Mechanisms = append(doc.Mechanisms, ispDoc)
	}
	return doc
}

// Table2WithMechanisms renders Table 2 with the mechanism-signature
// column appended: per product, the wire quirks (DNS sinkhole/TTL,
// injected-RST TTL/window/sidedness, SNI filter behaviour) that
// attribute off-path censorship to it. The three-column Table2 stays the
// HTTP-only golden surface; this variant renders only in mechanism mode.
func Table2WithMechanisms(keywords, signatures, mechSigs map[string][]string) string {
	t := &Table{
		Title:   "Table 2: Identification keywords, validation signatures, and mechanism quirks.",
		Headers: []string{"Product", "Shodan keywords", "WhatWeb signature", "Mechanism signatures"},
	}
	for _, p := range unionProducts(keywords, mechSigs) {
		t.AddRow(p,
			strings.Join(keywords[p], ", "),
			strings.Join(signatures[p], "; "),
			strings.Join(mechSigs[p], "; "))
	}
	return t.String()
}

// Table2MechanismsJSON builds the four-column Table 2 document; the
// per-product "mechanisms" field is omitted from HTTP-only renderings.
func Table2MechanismsJSON(keywords, signatures, mechSigs map[string][]string) Table2Doc {
	var doc Table2Doc
	for _, p := range unionProducts(keywords, mechSigs) {
		doc.Products = append(doc.Products, Table2RowDoc{
			Product:    p,
			Keywords:   keywords[p],
			Signatures: signatures[p],
			Mechanisms: mechSigs[p],
		})
	}
	return doc
}

// unionProducts merges and sorts the product keys of both maps.
func unionProducts(a, b map[string][]string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for p := range a {
		seen[p] = true
		out = append(out, p)
	}
	for p := range b {
		if !seen[p] {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
