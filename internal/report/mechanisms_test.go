package report

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"filtermap/internal/measurement"
	"filtermap/internal/mechanism"
)

// mechTargets builds a two-ISP fixture: a DNS-censoring ISP with a
// secondary RST probe firing (a mixed deployment), and an SNI-censoring
// ISP with one degraded probe and one uncensored URL.
func mechTargets() []MechanismTarget {
	dnsResult := measurement.MechanismResult{
		Result: measurement.Result{URL: "http://global-lgbt.org/"},
		Probes: []measurement.MechanismProbe{
			{Kind: mechanism.KindDNS, Detected: true, Product: "Netsweeper", Evidence: "sinkhole=203.0.113.40 ttl=300"},
			{Kind: mechanism.KindRST, Detected: true, Product: "Netsweeper", Evidence: "rst ttl=64 win=8192 one-sided"},
		},
		Mechanism: mechanism.KindDNS, MechProduct: "Netsweeper", MechEvidence: "sinkhole=203.0.113.40 ttl=300",
	}
	sniResult := measurement.MechanismResult{
		Result: measurement.Result{URL: "http://global-media-freedom.org/"},
		Probes: []measurement.MechanismProbe{
			{Kind: mechanism.KindSNI, Detected: true, Product: "Websense", Evidence: "sni reset ttl=255 win=4096; blocks without sni"},
			{Kind: mechanism.KindDNS, Degraded: "resolver unreachable"},
		},
		Mechanism: mechanism.KindSNI, MechProduct: "Websense", MechEvidence: "sni reset ttl=255 win=4096; blocks without sni",
	}
	cleanResult := measurement.MechanismResult{
		Result: measurement.Result{URL: "http://global-gambling.org/"},
	}
	return []MechanismTarget{
		{Country: "TR", ISP: "TurkTelekom", ASN: 9121, Results: []measurement.MechanismResult{dnsResult}},
		{Country: "EG", ISP: "TelecomEgypt", ASN: 8452, Results: []measurement.MechanismResult{sniResult, cleanResult}},
	}
}

func TestMechanismSurveyRendersFindingsAndDegraded(t *testing.T) {
	out := MechanismSurvey(mechTargets())
	for _, want := range []string{
		"Mechanism survey:",
		"TurkTelekom", "TR (AS 9121)", "sinkhole=203.0.113.40 ttl=300",
		// The mixed deployment's secondary RST finding surfaces too.
		"rst ttl=64 win=8192 one-sided",
		"TelecomEgypt", "sni reset ttl=255 win=4096",
		"2 ISP(s) surveyed, 3 URL(s) tested, 2 censored.",
		// The degraded DNS probe on TelecomEgypt triggers the footer.
		"DEGRADED: 1 survey run(s) had inconclusive probes:",
		"TelecomEgypt (AS 8452): 1 inconclusive probe line(s)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("MechanismSurvey missing %q:\n%s", want, out)
		}
	}
}

func TestTable4MechanismsMarksCategoriesAndMixedKinds(t *testing.T) {
	out := Table4Mechanisms(mechTargets())
	for _, want := range []string{
		"Table 4 (mechanisms):",
		// Mixed deployment renders as dns+rst in report kind order.
		"dns+rst",
		"Netsweeper", "Websense", "sni",
		"Gay, Lesbian, Bisexual and Transgender",
		"Media Freedom / Independent Media",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table4Mechanisms missing %q:\n%s", want, out)
		}
	}
	// The clean gambling URL must not mark a category: exactly one "x"
	// per censored row.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Netsweeper") || strings.HasPrefix(line, "Websense") {
			if n := strings.Count(line, " x "); n != 1 {
				t.Fatalf("row has %d marked categories, want 1: %q", n, line)
			}
		}
	}
}

func TestMechanismsJSONShape(t *testing.T) {
	doc := MechanismsJSON(mechTargets())
	if len(doc.Mechanisms) != 2 {
		t.Fatalf("doc has %d ISPs, want 2", len(doc.Mechanisms))
	}
	tr := doc.Mechanisms[0]
	if tr.ISP != "TurkTelekom" || tr.Tested != 1 || tr.Censored != 1 {
		t.Fatalf("TurkTelekom doc = %+v", tr)
	}
	if len(tr.Findings) != 2 {
		t.Fatalf("mixed deployment should yield 2 findings, got %+v", tr.Findings)
	}
	eg := doc.Mechanisms[1]
	if !doc.Degraded || len(eg.Degraded) != 1 {
		t.Fatalf("degraded probe not surfaced: doc.Degraded=%v isp=%+v", doc.Degraded, eg)
	}
	if len(eg.URLs) != 2 || eg.URLs[1].Verdict != "accessible" || eg.URLs[1].Mechanism != "" {
		t.Fatalf("URL docs = %+v", eg.URLs)
	}

	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"mechanisms"`, `"findings"`, `"urls"`, `"degraded"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("JSON missing %s:\n%s", key, b)
		}
	}
}

func TestMechanismResultDegradedShadowedWhenCensored(t *testing.T) {
	// A censored URL's base-fetch failure (forged NXDOMAIN, injected RST)
	// is the censorship itself, not degradation.
	r := measurement.MechanismResult{
		Result:    measurement.Result{URL: "http://x.org/", Field: measurement.Fetch{Err: errors.New("no such host")}},
		Mechanism: mechanism.KindDNS, MechProduct: "Netsweeper",
	}
	if detail, ok := r.Degraded(); ok {
		t.Fatalf("censored result reported degraded: %q", detail)
	}
	r.Mechanism = ""
	if _, ok := r.Degraded(); !ok {
		t.Fatal("uncensored result with a field error should be degraded")
	}
}

func TestTable2WithMechanismsAddsColumnOnly(t *testing.T) {
	keywords := map[string][]string{"Netsweeper": {"nsw-banner"}}
	signatures := map[string][]string{"Netsweeper": {"X-Powered-By"}}
	mechSigs := map[string][]string{"Netsweeper": {"dns: sinkhole=203.0.113.40 ttl=300"}}
	out := Table2WithMechanisms(keywords, signatures, mechSigs)
	for _, want := range []string{"Mechanism signatures", "dns: sinkhole=203.0.113.40 ttl=300", "nsw-banner"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2WithMechanisms missing %q:\n%s", want, out)
		}
	}

	doc := Table2MechanismsJSON(keywords, signatures, mechSigs)
	if len(doc.Products) != 1 || len(doc.Products[0].Mechanisms) != 1 {
		t.Fatalf("Table2MechanismsJSON = %+v", doc)
	}
	// The plain Table2 document must stay free of the mechanisms key, so
	// HTTP-only renderings are byte-identical to the pre-mechanism format.
	plain, err := json.Marshal(Table2JSON(keywords, signatures))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "mechanisms") {
		t.Fatalf("plain Table2 JSON leaks the mechanisms field:\n%s", plain)
	}
}
