// Package report renders the paper's tables and figure as text, in the
// same rows and columns the paper prints. The reproduction harness
// (cmd/fmrepro and the root benchmarks) uses these renderers so a reader
// can diff harness output against the paper directly.
package report

import (
	"fmt"
	"sort"
	"strings"

	"filtermap/internal/characterize"
	"filtermap/internal/confirm"
	"filtermap/internal/identify"
	"filtermap/internal/urllist"
)

// Table renders an ASCII table with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// ProductInventoryRow is one Table 1 row.
type ProductInventoryRow struct {
	Company            string
	Headquarters       string
	ProductDescription string
	PreviouslyObserved string
}

// Table1 renders the product inventory.
func Table1(rows []ProductInventoryRow) string {
	t := &Table{
		Title:   "Table 1: Summary of products considered.",
		Headers: []string{"Company", "Headquarters", "Product description", "Previously observed"},
	}
	for _, r := range rows {
		t.AddRow(r.Company, r.Headquarters, r.ProductDescription, r.PreviouslyObserved)
	}
	return t.String()
}

// DefaultProductInventory returns the paper's Table 1 contents.
func DefaultProductInventory() []ProductInventoryRow {
	return []ProductInventoryRow{
		{"Blue Coat", "Sunnyvale, CA, USA", "Web proxy (ProxySG) and URL Filter (WebFilter)",
			"Kuwait, Burma, Egypt, Qatar, Saudi Arabia, Syria, UAE"},
		{"McAfee SmartFilter", "Santa Clara, CA, USA", "Filtering of Web content for enterprises",
			"Kuwait, Bahrain, Iran, Saudi Arabia, Oman, Tunisia, UAE"},
		{"Netsweeper", "Guelph, ON, Canada", "Netsweeper Content Filtering",
			"Qatar, UAE, Yemen"},
		{"Websense", "San Diego, CA, USA", "Web proxy gateways incl. data-leakage monitoring",
			"Yemen (prior to 2009)"},
	}
}

// Table2 renders the identification keyword/signature summary.
func Table2(keywords map[string][]string, signatures map[string][]string) string {
	t := &Table{
		Title:   "Table 2: Identification keywords and validation signatures.",
		Headers: []string{"Product", "Shodan keywords", "WhatWeb signature"},
	}
	products := make([]string, 0, len(keywords))
	for p := range keywords {
		products = append(products, p)
	}
	sort.Strings(products)
	for _, p := range products {
		t.AddRow(p, strings.Join(keywords[p], ", "), strings.Join(signatures[p], "; "))
	}
	return t.String()
}

// Table3 renders the confirmation case studies. Campaigns that ran on
// partial evidence (failed submissions, degraded measurements) get a
// degraded footer; with no degradation the output is unchanged.
func Table3(outcomes []*confirm.Outcome) string {
	t := &Table{
		Title:   "Table 3: Summary of URL filter case studies.",
		Headers: []string{"Product", "Country", "ISP", "Date", "Sites submitted", "Category", "Sites blocked", "Confirmed?"},
	}
	var degraded []string
	for _, o := range outcomes {
		c := o.Campaign
		confirmed := "no"
		if o.Confirmed {
			confirmed = "YES"
		}
		t.AddRow(
			c.Product,
			c.Country,
			fmt.Sprintf("%s (AS %d)", c.ISP, c.ASN),
			c.Date,
			o.SubmittedRatio(),
			c.CategoryLabel,
			o.Ratio(),
			confirmed,
		)
		if o.Degraded() {
			degraded = append(degraded, fmt.Sprintf("  %s/%s (AS %d): %d submit error(s), %d degraded measurement(s)",
				c.Product, c.ISP, c.ASN, len(o.SubmitErrors), len(o.MeasurementErrors())))
		}
	}
	out := t.String()
	if len(degraded) > 0 {
		out += fmt.Sprintf("DEGRADED: %d campaign(s) ran on partial evidence:\n%s\n",
			len(degraded), strings.Join(degraded, "\n"))
	}
	return out
}

// Table4 renders the blocked-content matrix.
func Table4(rows []characterize.MatrixRow) string {
	cols := characterize.Table4Columns()
	headers := []string{"Product", "Where"}
	for _, c := range cols {
		name := c
		if cat, ok := urllist.CategoryByCode(c); ok {
			name = cat.Name
		}
		headers = append(headers, name)
	}
	t := &Table{
		Title:   "Table 4: Summary of Web content blocked by URL filtering products.",
		Headers: headers,
	}
	for _, row := range rows {
		cells := []string{row.Product, fmt.Sprintf("%s (AS %d)", row.Country, row.ASN)}
		for _, c := range cols {
			if row.Blocked[c] {
				cells = append(cells, "x")
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Table4WithReports renders the blocked-content matrix from the raw
// characterization reports, appending a degraded footer when any run
// carried transport-degraded measurements. With clean runs the output is
// byte-identical to Table4(characterize.Matrix(reports)).
func Table4WithReports(reports []*characterize.Report) string {
	out := Table4(characterize.Matrix(reports))
	var degraded []string
	for _, rep := range reports {
		if rep.Degraded {
			degraded = append(degraded, fmt.Sprintf("  %s %s (AS %d): %d degraded measurement(s)",
				rep.Country, rep.ISP, rep.ASN, len(rep.Errors)))
		}
	}
	if len(degraded) > 0 {
		out += fmt.Sprintf("DEGRADED: %d characterization run(s) had partial measurements:\n%s\n",
			len(degraded), strings.Join(degraded, "\n"))
	}
	return out
}

// Table5Row is one methods/limitations row.
type Table5Row struct {
	Step       string
	Technique  string
	Limitation string
	Evasion    string
	// Outcome summarizes what the evasion benchmark measured.
	Outcome string
}

// Table5 renders the limitations/evasion summary with measured outcomes.
func Table5(rows []Table5Row) string {
	t := &Table{
		Title:   "Table 5: Methods, limitations, evasion tactics — with measured outcomes.",
		Headers: []string{"Step", "Technique", "Limitation", "Evasionary tactic", "Measured outcome"},
	}
	for _, r := range rows {
		t.AddRow(r.Step, r.Technique, r.Limitation, r.Evasion, r.Outcome)
	}
	return t.String()
}

// Figure1 renders the product -> countries map as text.
func Figure1(rep *identify.Report) string {
	var b strings.Builder
	b.WriteString("Figure 1: Locations of URL filter installations\n")
	pc := rep.ProductCountries()
	products := make([]string, 0, len(pc))
	for p := range pc {
		products = append(products, p)
	}
	sort.Strings(products)
	for _, p := range products {
		fmt.Fprintf(&b, "  %-20s %s\n", p+":", strings.Join(pc[p], " "))
	}
	fmt.Fprintf(&b, "  (%d candidate IPs from keyword search, %d validated; false-positive rate %.0f%%)\n",
		rep.CandidateCount, rep.ValidatedCount, rep.FalsePositiveRate()*100)
	if rep.Degraded {
		fmt.Fprintf(&b, "  DEGRADED: partial coverage (%d stage error(s), %d query error(s))\n",
			len(rep.Errors), len(rep.QueryErrors))
		for _, e := range rep.Errors {
			fmt.Fprintf(&b, "    %s %s: %s\n", e.Stage, e.Target, e.Err)
		}
		for _, qe := range rep.QueryErrors {
			fmt.Fprintf(&b, "    query %s %q: %v\n", qe.Product, qe.Query, qe.Err)
		}
	}
	return b.String()
}

// Installations renders the per-installation detail beneath Figure 1.
func Installations(rep *identify.Report) string {
	t := &Table{
		Title:   "Validated installations",
		Headers: []string{"IP", "Hostname", "Products", "Country", "ASN", "AS name"},
	}
	for _, inst := range rep.Installations {
		t.AddRow(
			inst.Addr.String(),
			inst.Hostname,
			strings.Join(inst.Products, ", "),
			inst.Country,
			fmt.Sprintf("%d", inst.ASN),
			inst.ASName,
		)
	}
	return t.String()
}
