package report

import (
	"net/netip"
	"strings"
	"testing"

	"filtermap/internal/characterize"
	"filtermap/internal/confirm"
	"filtermap/internal/identify"
	"filtermap/internal/urllist"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"A", "Blong"}}
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "Blong") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Columns aligned: every row has the separator at the same offset.
	sep := strings.Index(lines[1], "|")
	for _, l := range lines[2:] {
		if strings.Index(l, "|") != sep {
			t.Fatalf("misaligned row: %q", l)
		}
	}
}

func TestTable1ContainsAllVendors(t *testing.T) {
	out := Table1(DefaultProductInventory())
	for _, vendor := range []string{"Blue Coat", "McAfee SmartFilter", "Netsweeper", "Websense"} {
		if !strings.Contains(out, vendor) {
			t.Errorf("Table 1 missing %s", vendor)
		}
	}
	for _, hq := range []string{"Sunnyvale", "Santa Clara", "Guelph", "San Diego"} {
		if !strings.Contains(out, hq) {
			t.Errorf("Table 1 missing headquarters %s", hq)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(
		map[string][]string{"Netsweeper": {"netsweeper", "webadmin"}},
		map[string][]string{"Netsweeper": {"built-in detection"}},
	)
	if !strings.Contains(out, "netsweeper, webadmin") || !strings.Contains(out, "built-in detection") {
		t.Fatalf("Table 2 = %s", out)
	}
}

func TestTable3Rendering(t *testing.T) {
	o := &confirm.Outcome{
		Campaign: &confirm.Campaign{
			Product: "Netsweeper", Country: "YE", ISP: "YemenNet", ASN: 12486,
			Date: "3/2013", CategoryLabel: "Proxy anonymizer",
		},
		Submitted:        []string{"a", "b", "c", "d", "e", "f"},
		Controls:         []string{"g", "h", "i", "j", "k", "l"},
		BlockedSubmitted: 6,
		Confirmed:        true,
	}
	out := Table3([]*confirm.Outcome{o})
	for _, want := range []string{"Netsweeper", "YemenNet (AS 12486)", "3/2013", "6/12", "6/6", "YES", "Proxy anonymizer"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
	o.Confirmed = false
	o.BlockedSubmitted = 0
	out = Table3([]*confirm.Outcome{o})
	if !strings.Contains(out, "0/6") || !strings.Contains(out, "no") {
		t.Errorf("unconfirmed row wrong:\n%s", out)
	}
}

func TestTable4Rendering(t *testing.T) {
	rows := []characterize.MatrixRow{{
		Product: "Netsweeper", Country: "YE", ASN: 12486,
		Blocked: map[string]bool{
			urllist.CatMediaFreedom: true,
			urllist.CatLGBT:         true,
		},
	}}
	out := Table4(rows)
	if !strings.Contains(out, "Netsweeper") || !strings.Contains(out, "YE (AS 12486)") {
		t.Fatalf("Table 4 = %s", out)
	}
	if !strings.Contains(out, "Media Freedom") {
		t.Fatal("Table 4 missing column names")
	}
	if strings.Count(out, "x") < 2 {
		t.Fatalf("Table 4 missing cell marks:\n%s", out)
	}
}

func TestTable5Rendering(t *testing.T) {
	out := Table5([]Table5Row{{
		Step: "Identify", Technique: "Port scans", Limitation: "visible only",
		Evasion: "hide device", Outcome: "0 installs; 5/5 confirmed",
	}})
	for _, want := range []string{"Port scans", "hide device", "5/5 confirmed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q", want)
		}
	}
}

func TestFigure1Rendering(t *testing.T) {
	rep := &identify.Report{
		CandidateCount: 10,
		ValidatedCount: 7,
		Installations: []identify.Installation{
			{Addr: netip.MustParseAddr("82.114.160.1"), Country: "YE", Products: []string{"Netsweeper"}},
			{Addr: netip.MustParseAddr("77.30.1.1"), Country: "SA", Products: []string{"McAfee SmartFilter"}},
		},
	}
	out := Figure1(rep)
	if !strings.Contains(out, "Netsweeper:") || !strings.Contains(out, "YE") {
		t.Fatalf("Figure 1 = %s", out)
	}
	if !strings.Contains(out, "false-positive rate 30%") {
		t.Fatalf("Figure 1 missing fp rate: %s", out)
	}
}

func TestInstallationsRendering(t *testing.T) {
	rep := &identify.Report{
		Installations: []identify.Installation{{
			Addr: netip.MustParseAddr("82.114.160.1"), Hostname: "ns1.yemen.net.ye",
			Products: []string{"Netsweeper"}, Country: "YE", ASN: 12486, ASName: "YEMENNET",
		}},
	}
	out := Installations(rep)
	for _, want := range []string{"82.114.160.1", "ns1.yemen.net.ye", "Netsweeper", "12486", "YEMENNET"} {
		if !strings.Contains(out, want) {
			t.Errorf("Installations missing %q", want)
		}
	}
}
