package scanner

import (
	"fmt"
	"net/netip"
	"testing"
)

func benchIndex(b *testing.B, n int) *Index {
	b.Helper()
	idx := NewIndex()
	base := netip.MustParseAddr("10.0.0.0")
	a := base
	for i := 0; i < n; i++ {
		a = a.Next()
		raw := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: host-%d\r\nContent-Type: text/html\r\n", i)
		if i%100 == 0 {
			raw = "HTTP/1.1 200 OK\r\nServer: Apache (Netsweeper WebAdmin)\r\n"
		}
		idx.Add(Banner{
			Addr:     a,
			Port:     8080,
			Hostname: fmt.Sprintf("h%d.example", i),
			Country:  "US",
			RawHead:  raw,
		})
	}
	return idx
}

func BenchmarkSearchKeyword(b *testing.B) {
	idx := benchIndex(b, 10000)
	q, _ := ParseQuery("netsweeper")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := idx.Search(q); len(hits) != 100 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}

func BenchmarkSearchWithFilters(b *testing.B) {
	idx := benchIndex(b, 10000)
	q, _ := ParseQuery("netsweeper country:US port:8080")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(q)
	}
}

// BenchmarkIndexSearch is the headline banner-search cost: the Table 2
// style keyword fan-out (bare keyword, quoted phrase with a country
// filter, port-qualified path) over a 10k-banner index.
// BENCH_classify.json tracks it.
func BenchmarkIndexSearch(b *testing.B) {
	idx := benchIndex(b, 10000)
	queries := make([]Query, 0, 3)
	for _, s := range []string{
		"netsweeper",
		`"netsweeper webadmin" country:US`,
		"8080/webadmin port:8080",
	} {
		q, err := ParseQuery(s)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := 0
		for _, q := range queries {
			hits += len(idx.Search(q))
		}
		if hits == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(`"mcafee web gateway" country:sa port:8080`); err != nil {
			b.Fatal(err)
		}
	}
}
