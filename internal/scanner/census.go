package scanner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Census-format persistence: §3.1 notes the methodology is "working
// towards applying it on a larger scale with the Internet Census data".
// The census format here is a line-oriented JSON dump of banner records,
// so a scan performed once (or a third-party dataset converted into the
// same shape) can be re-queried offline without re-probing anything.

// censusRecord is the wire form of one banner.
type censusRecord struct {
	Addr        string    `json:"addr"`
	Port        uint16    `json:"port"`
	Hostname    string    `json:"hostname,omitempty"`
	Country     string    `json:"country,omitempty"`
	StatusLine  string    `json:"status_line,omitempty"`
	RawHead     string    `json:"raw_head"`
	BodyExcerpt string    `json:"body_excerpt,omitempty"`
	ScannedAt   time.Time `json:"scanned_at"`
}

// WriteCensus serializes the index as JSON lines, sorted by (addr, port)
// for reproducible output.
func (x *Index) WriteCensus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, b := range x.All() {
		rec := censusRecord{
			Addr:        b.Addr.String(),
			Port:        b.Port,
			Hostname:    b.Hostname,
			Country:     b.Country,
			StatusLine:  b.StatusLine,
			RawHead:     b.RawHead,
			BodyExcerpt: b.BodyExcerpt,
			ScannedAt:   b.ScannedAt,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("scanner: write census: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCensus loads a census dump into a fresh index. Malformed lines
// abort with an error naming the line number.
func ReadCensus(r io.Reader) (*Index, error) {
	idx := NewIndex()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec censusRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("scanner: census line %d: %w", lineNo, err)
		}
		addr, err := netip.ParseAddr(rec.Addr)
		if err != nil {
			return nil, fmt.Errorf("scanner: census line %d: bad addr %q", lineNo, rec.Addr)
		}
		if rec.Port == 0 {
			return nil, fmt.Errorf("scanner: census line %d: missing port", lineNo)
		}
		idx.Add(Banner{
			Addr:        addr,
			Port:        rec.Port,
			Hostname:    rec.Hostname,
			Country:     rec.Country,
			StatusLine:  rec.StatusLine,
			RawHead:     rec.RawHead,
			BodyExcerpt: rec.BodyExcerpt,
			ScannedAt:   rec.ScannedAt,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scanner: read census: %w", err)
	}
	return idx, nil
}
