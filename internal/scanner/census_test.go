package scanner

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"net/netip"
)

func TestCensusRoundTrip(t *testing.T) {
	_, s := fixture(t)
	idx, err := s.ScanNetwork(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteCensus(&buf); err != nil {
		t.Fatalf("WriteCensus: %v", err)
	}
	loaded, err := ReadCensus(&buf)
	if err != nil {
		t.Fatalf("ReadCensus: %v", err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("loaded %d banners, want %d", loaded.Len(), idx.Len())
	}
	orig, got := idx.All(), loaded.All()
	for i := range orig {
		if orig[i].Addr != got[i].Addr || orig[i].Port != got[i].Port ||
			orig[i].RawHead != got[i].RawHead || orig[i].Country != got[i].Country {
			t.Fatalf("record %d: %+v != %+v", i, orig[i], got[i])
		}
	}
	// Queries answer identically offline.
	a, _ := idx.SearchString("netsweeper country:QA")
	b, _ := loaded.SearchString("netsweeper country:QA")
	if len(a) != len(b) {
		t.Fatalf("offline query diverged: %d vs %d", len(a), len(b))
	}
}

func TestCensusDeterministicOutput(t *testing.T) {
	idx := NewIndex()
	idx.Add(Banner{Addr: netip.MustParseAddr("10.0.0.2"), Port: 80, RawHead: "b", ScannedAt: time.Unix(0, 0).UTC()})
	idx.Add(Banner{Addr: netip.MustParseAddr("10.0.0.1"), Port: 80, RawHead: "a", ScannedAt: time.Unix(0, 0).UTC()})
	var b1, b2 bytes.Buffer
	idx.WriteCensus(&b1) //nolint:errcheck // buffer writes
	idx.WriteCensus(&b2) //nolint:errcheck // buffer writes
	if b1.String() != b2.String() {
		t.Fatal("census output not deterministic")
	}
	if !strings.HasPrefix(b1.String(), `{"addr":"10.0.0.1"`) {
		t.Fatalf("census not sorted: %s", b1.String())
	}
}

func TestReadCensusRejectsMalformed(t *testing.T) {
	cases := []string{
		"not-json\n",
		`{"addr":"not-an-ip","port":80,"raw_head":"x"}` + "\n",
		`{"addr":"10.0.0.1","raw_head":"x"}` + "\n", // missing port
	}
	for _, in := range cases {
		if _, err := ReadCensus(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed census: %q", in)
		}
	}
}

func TestReadCensusSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"addr":"10.0.0.1","port":80,"raw_head":"HTTP/1.1 200 OK","scanned_at":"2013-01-01T00:00:00Z"}` + "\n\n"
	idx, err := ReadCensus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 {
		t.Fatalf("loaded %d", idx.Len())
	}
}
