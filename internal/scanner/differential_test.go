package scanner

import (
	"net/netip"
	"sort"
	"sync"
	"testing"
)

// referenceSearch is the seed Search implementation, frozen: rebuild the
// lowered banner text per banner per query and run matchKeyword over it.
// The cached-text/CompiledQuery path must agree with it everywhere.
func referenceSearch(x *Index, q Query) []Banner {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []Banner
	for _, b := range x.banners {
		if q.Port != 0 && b.Port != q.Port {
			continue
		}
		if q.Country != "" && b.Country != q.Country {
			continue
		}
		text := b.Text()
		ok := true
		for _, kw := range q.Keywords {
			if !matchKeyword(b, text, kw) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr.Less(out[j].Addr)
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// differentialIndex builds an index whose banners exercise the cached
// text path: mixed case, Unicode (İ lowers to a multi-byte sequence),
// invalid UTF-8 (strings.ToLower re-encodes it as U+FFFD), multiple
// ports, countries.
func differentialIndex() *Index {
	idx := NewIndex()
	a := netip.MustParseAddr("10.1.0.0")
	add := func(port uint16, host, country, head, body string) {
		a = a.Next()
		idx.Add(Banner{Addr: a, Port: port, Hostname: host, Country: country, RawHead: head, BodyExcerpt: body})
	}
	add(8080, "ns1.example.qa", "QA", "HTTP/1.1 200 OK\r\nServer: Netsweeper WebAdmin\r\n", "<title>NETSWEEPER WebAdmin</title>")
	add(8080, "h2.example", "US", "HTTP/1.1 302 Found\r\nLocation: /webadmin/deny/\r\n", "")
	add(80, "h3.example", "US", "HTTP/1.1 200 OK\r\nServer: Apache\r\n", "ordinary page")
	add(15871, "h4.example.sa", "SA", "HTTP/1.1 200 OK\r\n", "blockpage.cgi?ws-session=1")
	add(8080, "türk.example.tr", "TR", "HTTP/1.1 200 OK\r\nServer: \xc4\xb0STANBUL\r\n", "İ and ı")
	add(8080, "h6.example", "", "HTTP/1.1 200 OK\r\nX: \xff\xferaw bytes\r\n", "body \xff excerpt")
	add(443, "h7.example", "US", "HTTP/1.1 403 Forbidden\r\nServer: Blue Coat ProxySG\r\n", "")
	return idx
}

func differentialQueries(t *testing.T) []Query {
	t.Helper()
	var out []Query
	for _, s := range []string{
		"netsweeper",
		"NETSWEEPER", // manual-uppercase keywords never match (both impls)
		`"netsweeper webadmin"`,
		"webadmin country:QA",
		"8080/webadmin port:8080",
		"8080/webadmin/deny",
		"proxysg",
		"blockpage.cgi country:SA",
		"istanbul",
		"port:8080",
		"",
	} {
		q, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", s, err)
		}
		out = append(out, q)
	}
	// Hand-built queries the parser can't produce.
	out = append(out,
		Query{Keywords: []string{"İSTANBUL"}},            // Unicode fold handled by ToLower at Add time only
		Query{Keywords: []string{"\xff"}},                // invalid UTF-8 keyword
		Query{Keywords: []string{"99999/x"}},             // port out of range: plain keyword
		Query{Keywords: []string{"8080/WEBADMIN"}},       // port-qualified path is lowercased at compile
		Query{Keywords: []string{"/slash-prefix"}},       // '/' at index 0: plain keyword
		Query{Keywords: []string{"443/"}, Country: "US"}, // empty path after port
	)
	return out
}

func sameBanners(a, b []Banner) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialSearch checks Search (cached text + compiled queries)
// against the frozen reference, serially and from 8 goroutines sharing
// the index (run under -race via `make race`).
func TestDifferentialSearch(t *testing.T) {
	idx := differentialIndex()
	queries := differentialQueries(t)
	check := func(t *testing.T) {
		for _, q := range queries {
			got := idx.Search(q)
			want := referenceSearch(idx, q)
			if !sameBanners(got, want) {
				t.Errorf("query %+v:\n  new: %d hits %v\n  ref: %d hits %v", q, len(got), got, len(want), want)
			}
		}
	}
	t.Run("serial", check)
	t.Run("workers-8", func(t *testing.T) {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				check(t)
			}()
		}
		wg.Wait()
	})
}

// TestSearchBytesAppends pins the dst contract: results append after
// existing elements and only the appended region is sorted.
func TestSearchBytesAppends(t *testing.T) {
	idx := differentialIndex()
	q, _ := ParseQuery("netsweeper")
	cq := q.Compile()
	sentinel := Banner{Hostname: "sentinel"}
	out := idx.SearchBytes(cq, []Banner{sentinel})
	if len(out) < 2 || out[0].Hostname != "sentinel" {
		t.Fatalf("dst not preserved: %v", out)
	}
	if !sameBanners(out[1:], idx.Search(q)) {
		t.Fatalf("appended region differs from Search")
	}
}

// TestZeroAllocSearchBytes pins 0 allocs/op for the compiled search on
// hit and miss paths once dst capacity is warm. CI runs this.
func TestZeroAllocSearchBytes(t *testing.T) {
	idx := differentialIndex()
	hitQ, _ := ParseQuery("netsweeper port:8080")
	missQ, _ := ParseQuery("nosuchkeyword")
	hit, miss := hitQ.Compile(), missQ.Compile()
	dst := make([]Banner, 0, 64)
	if r := idx.SearchBytes(hit, dst[:0]); len(r) == 0 {
		t.Fatal("hit query found nothing")
	}
	cases := []struct {
		name string
		cq   *CompiledQuery
	}{{"hit", hit}, {"miss", miss}}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, func() {
			dst = idx.SearchBytes(tc.cq, dst[:0])
		}); n != 0 {
			t.Errorf("SearchBytes %s allocates %v/op, want 0", tc.name, n)
		}
	}
}
