package scanner

import (
	"net/netip"
	"testing"
	"unsafe"
)

// TestIndexInternsDuplicateBanners proves that two banners carrying
// byte-identical template strings share backing storage after Add —
// the property that keeps nation-scale index memory proportional to
// distinct templates, not host count.
func TestIndexInternsDuplicateBanners(t *testing.T) {
	idx := NewIndex()
	mk := func(last byte) Banner {
		return Banner{
			Addr:        netip.AddrFrom4([4]byte{240, 0, 0, last}),
			Port:        80,
			StatusLine:  string([]byte("HTTP/1.1 200 OK")),
			RawHead:     string([]byte("HTTP/1.1 200 OK\r\nServer: synth\r\n")),
			BodyExcerpt: string([]byte("<html><title>It works</title></html>")),
		}
	}
	idx.Add(mk(1))
	idx.Add(mk(2))

	all := idx.All()
	if len(all) != 2 {
		t.Fatalf("Len = %d, want 2", len(all))
	}
	if p0, p1 := unsafe.StringData(all[0].RawHead), unsafe.StringData(all[1].RawHead); p0 != p1 {
		t.Fatal("RawHead not interned: distinct backing arrays for identical values")
	}
	if p0, p1 := unsafe.StringData(all[0].BodyExcerpt), unsafe.StringData(all[1].BodyExcerpt); p0 != p1 {
		t.Fatal("BodyExcerpt not interned")
	}
	// The cached search text must also be shared.
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if len(idx.texts) != 2 || &idx.texts[0][0] != &idx.texts[1][0] {
		t.Fatal("cached search text not shared between identical banners")
	}
}

// TestIndexSearchAfterInterning guards that interning does not change
// search results.
func TestIndexSearchAfterInterning(t *testing.T) {
	idx := NewIndex()
	idx.Add(Banner{Addr: netip.MustParseAddr("240.0.0.1"), Port: 8080, RawHead: "HTTP/1.1 302 Found\r\n", BodyExcerpt: "/webadmin/ console"})
	idx.Add(Banner{Addr: netip.MustParseAddr("240.0.0.2"), Port: 80, RawHead: "HTTP/1.1 200 OK\r\n", BodyExcerpt: "plain page"})

	hits, err := idx.SearchString("8080/webadmin/")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Port != 8080 {
		t.Fatalf("hits = %+v, want the one 8080 banner", hits)
	}
}
