// Package scanner implements the banner-scan-and-search substrate of §3.1:
// the stand-in for the Shodan search engine and the Internet Census data.
//
// A Scanner sweeps address ranges from a vantage host, probing a port set
// and recording what an unauthenticated HTTP GET returns — status line,
// raw headers, and a body excerpt. The resulting Index supports the
// keyword queries of Table 2 ("proxysg", "cfru=", "8080/webadmin/", ...)
// with country: and port: filters, mirroring how the paper combines
// keywords "with each of the two letter country-code top-level domains".
//
// The scanner is deliberately not conservative (§3.1: "we are not
// conservative, and rely on the following step to confirm"): anything that
// answers is indexed, and false positives are left for fingerprint
// validation to reject.
package scanner

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"filtermap/internal/engine"
	"filtermap/internal/httpwire"
	"filtermap/internal/intern"
	"filtermap/internal/netsim"
)

// DefaultPorts is the port set swept when none is configured: the HTTP
// ports where the paper's four products expose themselves.
var DefaultPorts = []uint16{80, 443, 8080, 4712, 8082, 15871}

// Banner is one indexed service observation.
type Banner struct {
	Addr netip.Addr
	Port uint16
	// Hostname is the reverse-DNS name at scan time ("" if none).
	Hostname string
	// Country is derived from the hostname's ccTLD when possible ("" if
	// not derivable). Shodan exposes exactly this kind of weak location
	// metadata; authoritative geolocation happens later in the pipeline.
	Country string
	// StatusLine is the response's first line, e.g. "HTTP/1.1 302 Found".
	StatusLine string
	// RawHead is the exact status line + header bytes.
	RawHead string
	// BodyExcerpt is the leading bytes of the body.
	BodyExcerpt string
	// ScannedAt is when the observation was made.
	ScannedAt time.Time
}

// Text returns the searchable text of the banner: hostname, head and body
// excerpt, lowercased.
func (b *Banner) Text() string {
	return strings.ToLower(b.Hostname + "\n" + b.RawHead + "\n" + b.BodyExcerpt)
}

// Default probe bounds (used when neither the legacy fields nor the
// engine config set them).
const (
	DefaultProbeTimeout   = 5 * time.Second
	DefaultScanWorkers    = 32
	DefaultBodyExcerptLen = 2048
)

// Scanner probes hosts and builds an Index. Concurrency, timeout, retry
// and observability knobs live in the shared engine Config; the legacy
// Timeout/Workers fields remain honoured so struct-literal construction
// keeps working.
type Scanner struct {
	// Vantage is the host the scan originates from (a neutral,
	// unfiltered network position).
	Vantage *netsim.Host
	// Ports is the port sweep set; nil means DefaultPorts.
	Ports []uint16
	// BodyExcerptLen bounds indexed body bytes (default 2048).
	BodyExcerptLen int
	// Timeout bounds each probe (default 5s).
	// Deprecated: set Config.Timeout (or use New with engine.WithTimeout).
	Timeout time.Duration
	// Workers bounds concurrent probes (default 32).
	// Deprecated: set Config.Workers (or use New with engine.WithWorkers).
	Workers int
	// Config carries the shared execution knobs (workers, timeout, retry,
	// stats, observer). The zero value uses the scanner defaults.
	Config engine.Config
}

// New builds a Scanner from the research vantage and engine options:
//
//	scanner.New(vantage, engine.WithWorkers(64), engine.WithStats(stats))
func New(vantage *netsim.Host, opts ...engine.Option) *Scanner {
	return &Scanner{Vantage: vantage, Config: engine.NewConfig(opts...)}
}

func (s *Scanner) ports() []uint16 {
	if len(s.Ports) > 0 {
		return s.Ports
	}
	return DefaultPorts
}

func (s *Scanner) excerptLen() int {
	if s.BodyExcerptLen > 0 {
		return s.BodyExcerptLen
	}
	return DefaultBodyExcerptLen
}

// engineConfig resolves the effective execution config: explicit legacy
// fields win over Config values, which win over the scan defaults.
func (s *Scanner) engineConfig() engine.Config {
	cfg := s.Config
	if s.Workers > 0 {
		cfg.Workers = s.Workers
	}
	if s.Timeout > 0 {
		cfg.Timeout = s.Timeout
	}
	cfg.Workers = cfg.WorkersOr(DefaultScanWorkers)
	cfg.Timeout = cfg.TimeoutOr(DefaultProbeTimeout)
	return cfg
}

// ScanAddrs probes every addr×port combination and returns an Index of
// services that answered. Probes run through the shared engine pool;
// unanswered probes are normal (dark space, closed ports) and are not
// failures.
func (s *Scanner) ScanAddrs(ctx context.Context, addrs []netip.Addr) (*Index, error) {
	if s.Vantage == nil {
		return nil, fmt.Errorf("scanner: no vantage host")
	}
	type job struct {
		addr netip.Addr
		port uint16
	}
	jobs := make([]job, 0, len(addrs)*len(s.ports()))
	for _, a := range addrs {
		for _, p := range s.ports() {
			jobs = append(jobs, job{a, p})
		}
	}
	idx := NewIndex()
	err := engine.ForEach(ctx, s.engineConfig(), "scan", jobs, func(ctx context.Context, j job) error {
		if banner, ok := s.probe(ctx, j.addr, j.port); ok {
			idx.Add(banner)
		}
		return nil
	})
	return idx, err
}

// ScanNetwork sweeps every registered host in the network.
func (s *Scanner) ScanNetwork(ctx context.Context) (*Index, error) {
	return s.ScanAddrs(ctx, s.Vantage.Network().Addrs())
}

// ScanPrefix sweeps every address of an IP prefix, census-style: unlike
// ScanNetwork it does not know which addresses are allocated, so dark
// space costs a (fast) refused connection per port. maxAddrs bounds the
// sweep (0 means 65536, a /16).
func (s *Scanner) ScanPrefix(ctx context.Context, prefix netip.Prefix, maxAddrs int) (*Index, error) {
	if maxAddrs <= 0 {
		maxAddrs = 1 << 16
	}
	var addrs []netip.Addr
	for a := prefix.Addr(); prefix.Contains(a) && len(addrs) < maxAddrs; a = a.Next() {
		addrs = append(addrs, a)
	}
	return s.ScanAddrs(ctx, addrs)
}

// probe performs one banner grab: TCP connect, plain GET /, read response.
// The per-probe timeout arrives as the engine-imposed ctx deadline.
func (s *Scanner) probe(ctx context.Context, addr netip.Addr, port uint16) (Banner, bool) {
	conn, err := s.Vantage.Dial(ctx, addr, port)
	if err != nil {
		return Banner{}, false
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl) //nolint:errcheck // best-effort
	}

	req := &httpwire.Request{
		Method: "GET",
		Target: "/",
		Proto:  "HTTP/1.0",
		Header: httpwire.NewHeader("Host", addr.String(), "Connection", "close"),
	}
	if _, err := req.WriteTo(conn); err != nil {
		return Banner{}, false
	}
	// The banner copies what it keeps (head string, excerpt string), so
	// the pooled read buffer can be released before returning.
	buf := httpwire.GetReadBuffer()
	defer buf.Release()
	resp, err := httpwire.ReadResponseBuffered(buf, conn, false)
	if err != nil {
		return Banner{}, false
	}

	network := s.Vantage.Network()
	hostname, _ := network.ReverseLookup(addr)
	excerpt := string(resp.Body)
	if len(excerpt) > s.excerptLen() {
		excerpt = excerpt[:s.excerptLen()]
	}
	head := string(resp.RawHead)
	statusLine, _, _ := strings.Cut(head, "\r\n")
	return Banner{
		Addr:        addr,
		Port:        port,
		Hostname:    hostname,
		Country:     CountryFromHostname(hostname),
		StatusLine:  statusLine,
		RawHead:     head,
		BodyExcerpt: excerpt,
		ScannedAt:   network.Clock().Now(),
	}, true
}

// CountryFromHostname derives an upper-case country code from a ccTLD
// ("ns1.qtel.com.qa" -> "QA"). Generic TLDs yield "".
func CountryFromHostname(hostname string) string {
	hostname = strings.TrimSuffix(strings.ToLower(hostname), ".")
	i := strings.LastIndexByte(hostname, '.')
	if i < 0 || len(hostname)-i-1 != 2 {
		return ""
	}
	tld := hostname[i+1:]
	if tld == "co" || !isAlpha(tld) {
		return ""
	}
	return strings.ToUpper(tld)
}

func isAlpha(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return false
		}
	}
	return true
}

// Index is a searchable collection of banners: the Shodan stand-in.
//
// The searchable text of each banner (Banner.Text) is computed once at
// Add time and cached as bytes, so queries scan cached slices instead of
// lowercasing every banner on every search.
//
// Banner strings are interned at Add time: at nation scale tens of
// thousands of synthetic hosts answer from a handful of templates, and
// interning folds every duplicate hostname, header block, body excerpt
// and cached search text onto one backing copy, so index memory grows
// with distinct templates instead of host count.
type Index struct {
	mu        sync.RWMutex
	banners   []Banner
	texts     [][]byte // texts[i] == []byte(banners[i].Text()), cached at Add
	strs      *intern.Table
	textBytes map[string][]byte // interned text → shared cached byte form
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{strs: intern.NewTable(), textBytes: make(map[string][]byte)}
}

// Add inserts a banner.
func (x *Index) Add(b Banner) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.strs != nil {
		b.Hostname = x.strs.String(b.Hostname)
		b.Country = x.strs.String(b.Country)
		b.StatusLine = x.strs.String(b.StatusLine)
		b.RawHead = x.strs.String(b.RawHead)
		b.BodyExcerpt = x.strs.String(b.BodyExcerpt)
	}
	text := b.Text()
	tb, ok := x.textBytes[text]
	if !ok {
		tb = []byte(text)
		if x.textBytes != nil {
			x.textBytes[text] = tb
		}
	}
	x.banners = append(x.banners, b)
	x.texts = append(x.texts, tb)
}

// Len returns the number of indexed banners.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.banners)
}

// All returns every banner sorted by (addr, port).
func (x *Index) All() []Banner {
	x.mu.RLock()
	out := make([]Banner, len(x.banners))
	copy(out, x.banners)
	x.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr.Less(out[j].Addr)
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Query is a parsed banner search: free keywords (all must match the
// banner text, case-insensitively) plus optional filters.
type Query struct {
	Keywords []string
	Country  string
	Port     uint16
}

// ParseQuery parses the Shodan-style query language:
//
//	proxysg country:SA port:8080
//
// Unfiltered terms are substring keywords; "country:" and "port:" are
// filters. Quotes group multi-word keywords: `"mcafee web gateway"`.
func ParseQuery(q string) (Query, error) {
	var out Query
	for _, tok := range tokenize(q) {
		switch {
		case strings.HasPrefix(strings.ToLower(tok), "country:"):
			out.Country = strings.ToUpper(tok[len("country:"):])
		case strings.HasPrefix(strings.ToLower(tok), "port:"):
			var p int
			if _, err := fmt.Sscanf(tok[len("port:"):], "%d", &p); err != nil || p < 1 || p > 65535 {
				return Query{}, fmt.Errorf("scanner: bad port filter %q", tok)
			}
			out.Port = uint16(p)
		default:
			out.Keywords = append(out.Keywords, strings.ToLower(tok))
		}
	}
	return out, nil
}

// tokenize splits on spaces, honouring double quotes.
func tokenize(q string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range q {
		switch {
		case r == '"':
			inQuote = !inQuote
		case r == ' ' && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// CompiledQuery is a Query lowered for the byte-first search path:
// keywords are split once into plain substrings and port-qualified
// ("8080/webadmin/") forms, as byte slices ready to scan cached banner
// text. Compile once, search many times.
type CompiledQuery struct {
	query Query
	plain [][]byte // must all occur in the banner text
	ports []portKeyword
}

type portKeyword struct {
	port uint16
	path []byte
}

// Compile lowers the query for Index.SearchBytes.
func (q Query) Compile() *CompiledQuery {
	cq := &CompiledQuery{query: q}
	for _, kw := range q.Keywords {
		// Port-qualified keywords like "8080/webadmin/" match the
		// combination of listening port and path evidence.
		if i := strings.IndexByte(kw, '/'); i > 0 {
			if port, err := parsePort(kw[:i]); err == nil {
				cq.ports = append(cq.ports, portKeyword{port: port, path: []byte(strings.ToLower(kw[i:]))})
				continue
			}
		}
		cq.plain = append(cq.plain, []byte(kw))
	}
	return cq
}

// Query returns the query the compiled form was built from.
func (cq *CompiledQuery) Query() Query { return cq.query }

// matchText reports whether a banner satisfies every keyword.
func (cq *CompiledQuery) matchText(port uint16, text []byte) bool {
	for _, kw := range cq.plain {
		if !bytes.Contains(text, kw) {
			return false
		}
	}
	for _, pk := range cq.ports {
		if port != pk.port || !bytes.Contains(text, pk.path) {
			return false
		}
	}
	return true
}

// Search runs a parsed query.
func (x *Index) Search(q Query) []Banner {
	return x.SearchBytes(q.Compile(), nil)
}

// SearchBytes runs a compiled query over the cached banner text, appends
// matches to dst and returns it, with the appended region sorted by
// (addr, port). With a pre-compiled query and a reused dst of sufficient
// capacity it performs zero heap allocations. Typical use:
//
//	cq := q.Compile()
//	for ... {
//		hits = idx.SearchBytes(cq, hits[:0])
//	}
func (x *Index) SearchBytes(cq *CompiledQuery, dst []Banner) []Banner {
	q := &cq.query
	start := len(dst)
	x.mu.RLock()
	for i := range x.banners {
		b := &x.banners[i]
		if q.Port != 0 && b.Port != q.Port {
			continue
		}
		if q.Country != "" && b.Country != q.Country {
			continue
		}
		if cq.matchText(b.Port, x.texts[i]) {
			dst = append(dst, *b)
		}
	}
	x.mu.RUnlock()
	slices.SortFunc(dst[start:], func(a, b Banner) int {
		if a.Addr != b.Addr {
			if a.Addr.Less(b.Addr) {
				return -1
			}
			return 1
		}
		switch {
		case a.Port < b.Port:
			return -1
		case a.Port > b.Port:
			return 1
		default:
			return 0
		}
	})
	return dst
}

// SearchString parses and runs q.
func (x *Index) SearchString(q string) ([]Banner, error) {
	parsed, err := ParseQuery(q)
	if err != nil {
		return nil, err
	}
	return x.Search(parsed), nil
}

// matchKeyword matches one keyword against a banner the way the
// pre-CompiledQuery implementation did; the differential tests use it as
// the reference semantics.
//
// Deprecated: superseded by Query.Compile + Index.SearchBytes.
func matchKeyword(b Banner, text, kw string) bool {
	if i := strings.IndexByte(kw, '/'); i > 0 {
		if port, err := parsePort(kw[:i]); err == nil {
			return b.Port == port && strings.Contains(text, strings.ToLower(kw[i:]))
		}
	}
	return strings.Contains(text, kw)
}

func parsePort(s string) (uint16, error) {
	var p int
	if _, err := fmt.Sscanf(s, "%d", &p); err != nil {
		return 0, err
	}
	if p < 1 || p > 65535 {
		return 0, fmt.Errorf("out of range")
	}
	return uint16(p), nil
}

// Countries returns the distinct banner countries, sorted.
func (x *Index) Countries() []string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	set := make(map[string]bool)
	for _, b := range x.banners {
		if b.Country != "" {
			set[b.Country] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
