package scanner

import (
	"context"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"filtermap/internal/engine"
	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
)

// fixture builds a small network: a vantage, an HTTP service with a
// distinctive banner, a second service on a high port, and a silent host.
func fixture(t *testing.T) (*netsim.Network, *Scanner) {
	t.Helper()
	n := netsim.New(nil)
	t.Cleanup(n.Close)

	vantage, err := n.AddHost(netip.MustParseAddr("198.108.1.10"), "scan.example", nil)
	if err != nil {
		t.Fatal(err)
	}

	serve := func(ip, name string, port uint16, resp *httpwire.Response) {
		h, err := n.AddHost(netip.MustParseAddr(ip), name, nil)
		if err != nil {
			t.Fatal(err)
		}
		l, err := h.Listen(port)
		if err != nil {
			t.Fatal(err)
		}
		srv := &httpwire.Server{Handler: httpwire.HandlerFunc(func(*httpwire.Request) *httpwire.Response {
			return resp.Clone()
		})}
		go srv.Serve(l) //nolint:errcheck // ends with listener
	}

	serve("192.0.2.1", "ns1.filter.qa", 8080, httpwire.NewResponse(200,
		httpwire.NewHeader("Server", "Apache (Netsweeper WebAdmin)", "Content-Type", "text/html"),
		[]byte("<html><title>Netsweeper WebAdmin Login</title><a href=/webadmin/deny>deny</a></html>")))
	serve("192.0.2.2", "cache.proxy.ae", 80, httpwire.NewResponse(302,
		httpwire.NewHeader("Location", "http://www.cfauth.com/?cfru=aGk=", "Server", "Blue Coat ProxySG"),
		[]byte("<html>redirect</html>")))
	// Silent host: registered but no listeners.
	if _, err := n.AddHost(netip.MustParseAddr("192.0.2.3"), "dark.example", nil); err != nil {
		t.Fatal(err)
	}

	return n, New(vantage, engine.WithTimeout(2*time.Second))
}

func TestScanNetworkIndexesBanners(t *testing.T) {
	_, s := fixture(t)
	idx, err := s.ScanNetwork(context.Background())
	if err != nil {
		t.Fatalf("ScanNetwork: %v", err)
	}
	if idx.Len() != 2 {
		t.Fatalf("indexed %d banners, want 2", idx.Len())
	}
	all := idx.All()
	if all[0].Addr.String() != "192.0.2.1" || all[0].Port != 8080 {
		t.Fatalf("first banner = %v:%d", all[0].Addr, all[0].Port)
	}
	if all[0].Hostname != "ns1.filter.qa" || all[0].Country != "QA" {
		t.Fatalf("banner metadata = %q, %q", all[0].Hostname, all[0].Country)
	}
	if all[0].StatusLine != "HTTP/1.1 200 OK" {
		t.Fatalf("status line = %q", all[0].StatusLine)
	}
}

func TestKeywordSearch(t *testing.T) {
	_, s := fixture(t)
	idx, _ := s.ScanNetwork(context.Background())

	cases := []struct {
		query string
		want  int
	}{
		{"netsweeper", 1},
		{"proxysg", 1},
		{"cfru=", 1},
		{`"netsweeper webadmin"`, 1},
		{"nonexistent-keyword", 0},
		{"netsweeper country:QA", 1},
		{"netsweeper country:AE", 0},
		{"netsweeper port:8080", 1},
		{"netsweeper port:80", 0},
		{"8080/webadmin", 1}, // port-qualified path keyword
		{"80/webadmin", 0},
	}
	for _, c := range cases {
		hits, err := idx.SearchString(c.query)
		if err != nil {
			t.Fatalf("SearchString(%q): %v", c.query, err)
		}
		if len(hits) != c.want {
			t.Errorf("query %q returned %d hits, want %d", c.query, len(hits), c.want)
		}
	}
}

func TestSearchMultipleKeywordsAnded(t *testing.T) {
	_, s := fixture(t)
	idx, _ := s.ScanNetwork(context.Background())
	hits, _ := idx.SearchString("netsweeper webadmin")
	if len(hits) != 1 {
		t.Fatalf("AND query hits = %d, want 1", len(hits))
	}
	hits, _ = idx.SearchString("netsweeper proxysg")
	if len(hits) != 0 {
		t.Fatalf("contradictory AND query hits = %d, want 0", len(hits))
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(`"mcafee web gateway" country:sa port:8080 extra`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Country != "SA" || q.Port != 8080 {
		t.Fatalf("filters = %q, %d", q.Country, q.Port)
	}
	if len(q.Keywords) != 2 || q.Keywords[0] != "mcafee web gateway" || q.Keywords[1] != "extra" {
		t.Fatalf("keywords = %v", q.Keywords)
	}
}

func TestParseQueryBadPort(t *testing.T) {
	for _, bad := range []string{"port:abc", "port:0", "port:70000"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestCountryFromHostname(t *testing.T) {
	cases := map[string]string{
		"ns1.qtel.com.qa":       "QA",
		"proxy.emirates.ae":     "AE",
		"filter.wvnet.example":  "",
		"cache.comcast.example": "",
		"bare":                  "",
		"":                      "",
		"x.co":                  "", // .co excluded as pseudo-gTLD
		"a.b.c.de":              "DE",
		"host.q1":               "", // non-alpha
	}
	for in, want := range cases {
		if got := CountryFromHostname(in); got != want {
			t.Errorf("CountryFromHostname(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCountries(t *testing.T) {
	_, s := fixture(t)
	idx, _ := s.ScanNetwork(context.Background())
	got := idx.Countries()
	if len(got) != 2 || got[0] != "AE" || got[1] != "QA" {
		t.Fatalf("Countries = %v", got)
	}
}

func TestScanRespectsContext(t *testing.T) {
	_, s := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.ScanAddrs(ctx, []netip.Addr{netip.MustParseAddr("192.0.2.1")})
	// Either a context error or an empty index is acceptable; it must not
	// hang.
	_ = err
}

func TestScannerNoVantage(t *testing.T) {
	s := &Scanner{}
	if _, err := s.ScanAddrs(context.Background(), nil); err == nil {
		t.Fatal("scan without vantage succeeded")
	}
}

func TestBodyExcerptBounded(t *testing.T) {
	n := netsim.New(nil)
	t.Cleanup(n.Close)
	vantage, _ := n.AddHost(netip.MustParseAddr("198.108.1.10"), "", nil)
	big, _ := n.AddHost(netip.MustParseAddr("192.0.2.9"), "big.example", nil)
	l, _ := big.Listen(80)
	huge := make([]byte, 100<<10)
	for i := range huge {
		huge[i] = 'x'
	}
	srv := &httpwire.Server{Handler: httpwire.HandlerFunc(func(*httpwire.Request) *httpwire.Response {
		return httpwire.NewResponse(200, nil, huge)
	})}
	go srv.Serve(l) //nolint:errcheck // ends with listener

	s := &Scanner{Vantage: vantage, BodyExcerptLen: 512}
	idx, err := s.ScanAddrs(context.Background(), []netip.Addr{big.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	all := idx.All()
	if len(all) != 1 || len(all[0].BodyExcerpt) != 512 {
		t.Fatalf("excerpt length = %d, want 512", len(all[0].BodyExcerpt))
	}
}

func TestTokenizeProperty(t *testing.T) {
	// Tokenize never returns empty tokens and never panics.
	f := func(s string) bool {
		for _, tok := range tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	idx := NewIndex()
	idx.Add(Banner{Addr: netip.MustParseAddr("10.0.0.2"), Port: 80, RawHead: "kw"})
	idx.Add(Banner{Addr: netip.MustParseAddr("10.0.0.1"), Port: 8080, RawHead: "kw"})
	idx.Add(Banner{Addr: netip.MustParseAddr("10.0.0.1"), Port: 80, RawHead: "kw"})
	hits := idx.Search(Query{Keywords: []string{"kw"}})
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Addr.String() != "10.0.0.1" || hits[0].Port != 80 ||
		hits[1].Port != 8080 || hits[2].Addr.String() != "10.0.0.2" {
		t.Fatalf("order = %v", hits)
	}
}

func TestScanPrefix(t *testing.T) {
	_, s := fixture(t)
	// The fixture services live in 192.0.2.0/24; a census-style prefix
	// sweep finds them without knowing which addresses are allocated.
	idx, err := s.ScanPrefix(context.Background(), netip.MustParsePrefix("192.0.2.0/28"), 0)
	if err != nil {
		t.Fatalf("ScanPrefix: %v", err)
	}
	if idx.Len() != 2 {
		t.Fatalf("prefix sweep found %d banners, want 2", idx.Len())
	}
	// maxAddrs bounds the sweep below the first allocated address.
	idx, err = s.ScanPrefix(context.Background(), netip.MustParsePrefix("192.0.2.0/28"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Fatalf("bounded sweep found %d banners, want 0", idx.Len())
	}
}
