package server

import (
	"strings"
	"sync"
	"time"
)

// resultCache is the TTL result cache on the service hot path, keyed by
// canonicalized request. Values are fully marshaled JSON responses, so a
// hit costs one map lookup and zero encoding work.
type resultCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	max     int
	now     func() time.Time
	entries map[string]cacheEntry
}

type cacheEntry struct {
	val     []byte
	expires time.Time
}

// newResultCache builds a cache. ttl < 0 disables caching entirely
// (every get misses, puts are dropped); max bounds the entry count.
func newResultCache(ttl time.Duration, max int, now func() time.Time) *resultCache {
	return &resultCache{ttl: ttl, max: max, now: now, entries: make(map[string]cacheEntry)}
}

func (c *resultCache) get(key string) ([]byte, bool) {
	if c.ttl < 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	if c.now().After(e.expires) {
		delete(c.entries, key)
		return nil, false
	}
	return e.val, true
}

func (c *resultCache) put(key string, val []byte) {
	if c.ttl < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		c.evictOldestLocked()
	}
	c.entries[key] = cacheEntry{val: val, expires: c.now().Add(c.ttl)}
}

// evictOldestLocked drops the earliest-expiring entry to make room.
func (c *resultCache) evictOldestLocked() {
	var oldestKey string
	var oldest time.Time
	for k, e := range c.entries {
		if oldestKey == "" || e.expires.Before(oldest) {
			oldestKey, oldest = k, e.expires
		}
	}
	if oldestKey != "" {
		delete(c.entries, oldestKey)
	}
}

// invalidatePrefix drops every entry whose key starts with prefix and
// returns how many were dropped. Appending a newer snapshot for a
// (kind, config) calls this so cached reports for that pair die
// immediately instead of serving stale results until the TTL runs out.
func (c *resultCache) invalidatePrefix(prefix string) int {
	if c.ttl < 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k := range c.entries {
		if strings.HasPrefix(k, prefix) {
			delete(c.entries, k)
			n++
		}
	}
	return n
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// flightGroup deduplicates concurrent identical work: N callers asking
// for the same key while a run is in flight all wait on the one leader
// and share its result, so N concurrent identical requests trigger
// exactly one pipeline execution.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for that call and shares its result. shared
// reports whether this caller joined an existing flight.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
