package server

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestResultCacheTTLAndEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	c := newResultCache(time.Minute, 2, clk.Now)

	c.put("a", []byte("A"))
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Fatalf("get a = %q, %v", v, ok)
	}

	// Expiry.
	clk.Advance(61 * time.Second)
	if _, ok := c.get("a"); ok {
		t.Fatal("entry survived its TTL")
	}

	// Capacity eviction drops the earliest-expiring entry.
	c.put("a", []byte("A"))
	clk.Advance(time.Second)
	c.put("b", []byte("B"))
	clk.Advance(time.Second)
	c.put("c", []byte("C"))
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry not evicted at capacity")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("newest entry missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	c := newResultCache(-1, 16, clk.Now)
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache stored %d entries", c.len())
	}
}

func TestFlightGroupSharesOneExecution(t *testing.T) {
	g := newFlightGroup()
	began := make(chan struct{})
	release := make(chan struct{})
	var calls int

	var wg sync.WaitGroup
	leaderDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		val, err, shared := g.do("k", func() ([]byte, error) {
			calls++
			close(began)
			<-release
			return []byte("V"), nil
		})
		if err != nil || string(val) != "V" || shared {
			t.Errorf("leader: val=%q err=%v shared=%v", val, err, shared)
		}
		close(leaderDone)
	}()

	<-began
	const joiners = 8
	sharedCount := make(chan bool, joiners)
	var ready sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			val, err, shared := g.do("k", func() ([]byte, error) {
				t.Error("joiner executed fn")
				return nil, nil
			})
			if err != nil || string(val) != "V" {
				t.Errorf("joiner: val=%q err=%v", val, err)
			}
			sharedCount <- shared
		}()
	}
	// Let every joiner reach its do() call and block on the in-flight
	// leader before releasing it.
	ready.Wait()
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	close(sharedCount)
	for shared := range sharedCount {
		if !shared {
			t.Fatal("joiner not marked shared")
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}

	// Errors are shared too, and the key is released afterwards.
	wantErr := errors.New("boom")
	if _, err, _ := g.do("k", func() ([]byte, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	if val, err, _ := g.do("k", func() ([]byte, error) { return []byte("again"), nil }); err != nil || string(val) != "again" {
		t.Fatalf("key not released after error: %q %v", val, err)
	}
}

func TestRateLimiterBucketBehavior(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	l := newRateLimiter(2, 2, clk.Now)

	for i := 0; i < 2; i++ {
		if !l.allow("c1") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if l.allow("c1") {
		t.Fatal("request beyond burst allowed")
	}
	// Other clients have their own bucket.
	if !l.allow("c2") {
		t.Fatal("independent client denied")
	}
	// Half a second refills one token at 2/s.
	clk.Advance(500 * time.Millisecond)
	if !l.allow("c1") {
		t.Fatal("refilled token denied")
	}
	if l.allow("c1") {
		t.Fatal("second token appeared from nowhere")
	}

	// Disabled limiter admits everything.
	var nilLimiter *rateLimiter
	if !nilLimiter.allow("anyone") {
		t.Fatal("nil limiter denied a request")
	}
	if newRateLimiter(0, 4, clk.Now) != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
}
