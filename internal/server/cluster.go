package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"filtermap/internal/cluster"
	"filtermap/internal/monitor"
	"filtermap/internal/store"
)

// This file is the cluster surface: the coordinator wiring that fans
// pipeline requests out to workers, the /v1/cluster/* lease-protocol
// endpoints workers and replicas speak, and the replication-log tail.
//
//	POST /v1/cluster/lease      worker pulls shard leases
//	POST /v1/cluster/result     worker delivers a fragment (or failure)
//	POST /v1/cluster/heartbeat  worker renews its leases
//	POST /v1/cluster/release    worker hands leases back (drain)
//	GET  /v1/cluster            ring/job/counter status
//	GET  /v1/cluster/log        replication-log tail (?after=N&limit=M)

// Cluster roles.
const (
	// RoleCoordinator shards requests to remote workers only.
	RoleCoordinator = "coordinator"
	// RoleBoth runs in-process workers alongside the coordinator, so a
	// single binary serves and executes (remote workers may still join).
	RoleBoth = "both"
)

// ClusterOptions enables coordinator-mode scan-out.
type ClusterOptions struct {
	// Role is RoleCoordinator or RoleBoth ("" = RoleBoth).
	Role string
	// LeaseTTL bounds how long a silent worker keeps a shard (0 = 10s).
	LeaseTTL time.Duration
	// MaxAttempts bounds failed executions per shard (0 = 3).
	MaxAttempts int
	// LocalWorkers sizes the in-process worker pool with RoleBoth
	// (0 = 1; ignored for RoleCoordinator).
	LocalWorkers int
	// WorkerPoll is the local workers' idle poll interval (0 = 100ms).
	WorkerPoll time.Duration
	// WorkerHeartbeat is the local workers' lease-renewal interval
	// (0 = LeaseTTL/4, floored at 10ms).
	WorkerHeartbeat time.Duration
}

// clusterRuntime holds the server's cluster state: the coordinator,
// the optional in-process workers, and their lifecycle.
type clusterRuntime struct {
	role    string
	coord   *cluster.Coordinator
	workers []*cluster.Worker
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// startCluster wires the coordinator (and, for RoleBoth, local workers)
// into the server. Completed cluster runs append to the snapshot store
// through recordClusterDoc — the single-writer replication log.
func (s *Server) startCluster(opts ClusterOptions) {
	role := opts.Role
	if role == "" {
		role = RoleBoth
	}
	leaseTTL := opts.LeaseTTL
	if leaseTTL <= 0 {
		leaseTTL = 10 * time.Second
	}
	rt := &clusterRuntime{role: role}
	rt.coord = cluster.NewCoordinator(cluster.Options{
		LeaseTTL:    leaseTTL,
		MaxAttempts: opts.MaxAttempts,
		OnComplete:  s.recordClusterDoc,
		Now:         s.opts.now,
	})

	if role == RoleBoth {
		n := opts.LocalWorkers
		if n <= 0 {
			n = 1
		}
		hb := opts.WorkerHeartbeat
		if hb <= 0 {
			hb = leaseTTL / 4
			if hb < 10*time.Millisecond {
				hb = 10 * time.Millisecond
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		rt.cancel = cancel
		for i := 0; i < n; i++ {
			w := cluster.NewWorker(fmt.Sprintf("local-%d", i), cluster.LocalTransport{Coord: rt.coord}, s.engOpts...)
			w.Poll = opts.WorkerPoll
			w.HeartbeatEvery = hb
			rt.workers = append(rt.workers, w)
			rt.wg.Add(1)
			go func() {
				defer rt.wg.Done()
				w.Run(ctx) //nolint:errcheck // exits on cancel
			}()
		}
	}
	s.clusterRt = rt
}

// stopCluster drains the local workers and waits for them.
func (rt *clusterRuntime) stop() {
	if rt == nil {
		return
	}
	for _, w := range rt.workers {
		w.Drain()
	}
	if rt.cancel != nil {
		rt.cancel()
	}
	rt.wg.Wait()
}

// clusterRequest maps a normalized pipeline request onto the cluster
// wire request, carrying the effective world options. Only shardable
// kinds map; confirm (single-use timeline) reports false.
func (s *Server) clusterRequest(kind string, req any) (cluster.Request, bool) {
	effective := worldConfigOf(req).options(s.opts.World)
	switch r := req.(type) {
	case *IdentifyRequest:
		return cluster.Request{Kind: cluster.KindIdentify, World: effective, Products: r.Products, Countries: r.Countries}, true
	case *CharacterizeRequest:
		return cluster.Request{Kind: cluster.KindCharacterize, World: effective, ISPs: r.ISPs}, true
	case *DiscoverRequest:
		return cluster.Request{Kind: cluster.KindDiscover, World: effective, ISPs: r.ISPs, Rounds: r.Rounds, Budget: r.Budget}, true
	case *MechanismsRequest:
		return cluster.Request{Kind: cluster.KindMechanisms, World: effective, ISPs: r.ISPs}, true
	}
	_ = kind
	return cluster.Request{}, false
}

// recordClusterDoc is the coordinator's OnComplete hook: it appends the
// merged document to the snapshot store (the replication log replicas
// tail) and publishes a watch event. The store dedupes identical
// consecutive content per (kind, config), so repeated runs of an
// unchanged world cost one record.
func (s *Server) recordClusterDoc(req cluster.Request, doc any) {
	storeKind, err := storeKindFor(req.Kind)
	if err != nil {
		s.metrics.clusterAppendError()
		return
	}
	body, err := json.Marshal(doc)
	if err != nil {
		s.metrics.clusterAppendError()
		return
	}
	meta, err := s.snaps.Append(store.Snapshot{
		Kind:   storeKind,
		At:     s.base.Clock.Now(),
		Config: store.ConfigHash(req.World),
		Note:   "cluster",
		Body:   body,
	})
	if err != nil {
		// The client already received the merged document, but the
		// record never reached the replication log: followers and
		// /v1/snapshots are now behind reality. Count it so operators
		// can see the log diverging.
		s.metrics.clusterAppendError()
		return
	}
	s.metrics.snapshotRecorded(meta.Deduped)
	if !meta.Deduped {
		s.broker.Publish(monitor.Event{
			At: meta.At, Type: monitor.EventSnapshot,
			Plan: "cluster", Kind: meta.Kind,
			Seq: meta.Seq, SnapshotID: meta.ID,
			Note: meta.Note,
		})
	}
}

// clusterPath reports whether an URL path belongs to the worker/replica
// protocol, which the rate limiter must not throttle for authenticated
// workers: a starved heartbeat would expire leases and churn shards
// under client load.
func clusterPath(path string) bool {
	switch path {
	case "/v1/cluster/lease", "/v1/cluster/result", "/v1/cluster/heartbeat",
		"/v1/cluster/release", "/v1/cluster/log":
		return true
	}
	return false
}

// clusterAuthorized reports whether the request may speak the worker/
// replica protocol: the configured cluster token matches (constant-time
// compare), or no token is configured and the protocol is open.
func (s *Server) clusterAuthorized(r *http.Request) bool {
	token := s.opts.ClusterToken
	if token == "" {
		return true
	}
	got := r.Header.Get(cluster.TokenHeader)
	return subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// clusterAuth gates a protocol handler, writing 401 when the request
// lacks the configured cluster token. Without a token the leases,
// fragments, and replication log would be open to any client the rate
// limiter lets through: forged fragments would merge into served
// documents and replicate to followers.
func (s *Server) clusterAuth(w http.ResponseWriter, r *http.Request) bool {
	if s.clusterAuthorized(r) {
		return true
	}
	jsonError(w, http.StatusUnauthorized, "cluster token required (send "+cluster.TokenHeader+")")
	return false
}

// ---- handlers ----

// clusterCoord returns the coordinator, or nil with a 409 written when
// the server is not running one.
func (s *Server) clusterCoord(w http.ResponseWriter) *cluster.Coordinator {
	if s.clusterRt == nil {
		jsonError(w, http.StatusConflict, "cluster mode is not enabled (start fmserve with -role coordinator|both)")
		return nil
	}
	return s.clusterRt.coord
}

func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	coord := s.clusterCoord(w)
	if coord == nil {
		return
	}
	var req cluster.LeaseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		jsonError(w, http.StatusBadRequest, "worker id required")
		return
	}
	writeJSON(w, http.StatusOK, cluster.LeaseResponse{Leases: coord.Lease(req.Worker, req.Max)})
}

func (s *Server) handleClusterResult(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	coord := s.clusterCoord(w)
	if coord == nil {
		return
	}
	var req cluster.ResultRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		jsonError(w, http.StatusBadRequest, "worker id required")
		return
	}
	if req.Fragment == nil && req.Error == "" {
		jsonError(w, http.StatusBadRequest, "result carries neither fragment nor error")
		return
	}
	writeJSON(w, http.StatusOK, coord.Result(req.Worker, req.Ref, req.Fragment, req.Error))
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	coord := s.clusterCoord(w)
	if coord == nil {
		return
	}
	var req cluster.HeartbeatRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		jsonError(w, http.StatusBadRequest, "worker id required")
		return
	}
	writeJSON(w, http.StatusOK, cluster.HeartbeatResponse{Valid: coord.Heartbeat(req.Worker, req.Refs)})
}

func (s *Server) handleClusterRelease(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	coord := s.clusterCoord(w)
	if coord == nil {
		return
	}
	var req cluster.ReleaseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	coord.Release(req.Worker, req.Refs)
	writeJSON(w, http.StatusOK, map[string]bool{"released": true})
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if s.clusterRt == nil {
		writeJSON(w, http.StatusOK, cluster.StatusDoc{Enabled: false})
		return
	}
	doc := s.clusterRt.coord.Status()
	doc.Role = s.clusterRt.role
	writeJSON(w, http.StatusOK, doc)
}

// handleClusterLog serves the replication-log tail. It works regardless
// of cluster role — the log is just the snapshot store in sequence
// order — so any fmserve can be a replication source.
func (s *Server) handleClusterLog(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	after, err := parseUintParam(r, "after")
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := 256
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			jsonError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		if n < limit {
			limit = n
		}
	}
	recs, err := s.snaps.TailAfter(after, limit)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := cluster.LogResponse{Records: make([]cluster.LogRecord, 0, len(recs)), LastSeq: s.snaps.LastSeq()}
	for _, rec := range recs {
		resp.Records = append(resp.Records, cluster.LogRecord{Meta: rec.Meta, Body: rec.Body})
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseUintParam(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s must be a non-negative integer", name)
	}
	return n, nil
}
