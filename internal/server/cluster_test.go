package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"filtermap/internal/cluster"
)

// clusterTestOptions enables coordinator+local-worker mode tuned for
// test latency.
func clusterTestOptions(workers int) Options {
	return Options{Cluster: &ClusterOptions{
		Role:         RoleBoth,
		LocalWorkers: workers,
		WorkerPoll:   2 * time.Millisecond,
	}}
}

// postBody posts to url and returns the raw response body.
func postBody(t *testing.T, url string) []byte {
	t.Helper()
	resp := doJSON(t, http.MethodPost, url, nil, nil)
	wantStatus(t, resp, http.StatusOK)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return b
}

// TestClusterDisabled checks the protocol surface without cluster mode:
// worker endpoints 409, the status doc reports disabled, and the
// replication log still serves (any fmserve can be a log source).
func TestClusterDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/cluster/lease", cluster.LeaseRequest{Worker: "w"}, nil)
	wantStatus(t, resp, http.StatusConflict)

	var status cluster.StatusDoc
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster", nil, &status)
	wantStatus(t, resp, http.StatusOK)
	if status.Enabled {
		t.Fatal("status.Enabled = true on a standalone server")
	}

	var logResp cluster.LogResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/log", nil, &logResp)
	wantStatus(t, resp, http.StatusOK)
}

// TestClusterByteIdentity is the core determinism contract: every
// shardable kind served by a coordinator+workers cluster must be
// byte-identical to the standalone single-process answer.
func TestClusterByteIdentity(t *testing.T) {
	_, plain := newTestServer(t, Options{})
	_, clustered := newTestServer(t, clusterTestOptions(2))

	for _, kind := range []string{"identify", "mechanisms", "discover", "characterize"} {
		path := "/v1/" + kind + "?wait=1"
		want := postBody(t, plain.URL+path)
		got := postBody(t, clustered.URL+path)
		if string(got) != string(want) {
			t.Errorf("%s: clustered body differs from single-process\nclustered: %.300s\nsingle:    %.300s", kind, got, want)
		}
	}
}

// TestClusterStatusMetricsAndLog exercises the observability surface
// after real clustered runs: /v1/cluster counters, the /metrics cluster
// section, and the replication-log tail fed by OnComplete appends.
func TestClusterStatusMetricsAndLog(t *testing.T) {
	_, ts := newTestServer(t, clusterTestOptions(2))

	postBody(t, ts.URL+"/v1/mechanisms?wait=1")

	var status cluster.StatusDoc
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/cluster", nil, &status)
	wantStatus(t, resp, http.StatusOK)
	if !status.Enabled || status.Role != RoleBoth {
		t.Fatalf("status = %+v, want enabled role=both", status)
	}
	if len(status.Workers) == 0 {
		t.Fatal("status lists no workers after a clustered run")
	}
	if status.Counters.JobsDone == 0 || status.Counters.ShardsDone == 0 || status.Counters.LeasesGranted == 0 {
		t.Fatalf("counters untouched after a clustered run: %+v", status.Counters)
	}

	var metrics MetricsDoc
	resp = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &metrics)
	wantStatus(t, resp, http.StatusOK)
	if metrics.Cluster == nil {
		t.Fatal("/metrics omits the cluster section in cluster mode")
	}
	if metrics.Cluster.Role != RoleBoth || metrics.Cluster.Counters.ShardsDone == 0 {
		t.Fatalf("/metrics cluster section = %+v", metrics.Cluster)
	}
	if metrics.Cluster.AppendErrors != 0 {
		t.Fatalf("AppendErrors = %d after clean runs, want 0", metrics.Cluster.AppendErrors)
	}

	// The completed run appended to the store — the replication log.
	var logResp cluster.LogResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/log", nil, &logResp)
	wantStatus(t, resp, http.StatusOK)
	if len(logResp.Records) == 0 || logResp.LastSeq == 0 {
		t.Fatalf("replication log empty after a clustered run: %+v", logResp)
	}
	if logResp.Records[0].Meta.Note != "cluster" {
		t.Fatalf("log record note = %q, want cluster", logResp.Records[0].Meta.Note)
	}

	// Tailing from the end returns nothing new.
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/log?after="+
		strconv.FormatUint(logResp.LastSeq, 10), nil, &logResp)
	wantStatus(t, resp, http.StatusOK)
	if len(logResp.Records) != 0 {
		t.Fatalf("tail past LastSeq returned %d records", len(logResp.Records))
	}
}

// TestClusterTokenAuth locks down the worker/replica protocol: with a
// cluster token configured, every /v1/cluster/* protocol endpoint must
// reject requests without the token, and accept them with it — so no
// anonymous client can lease shards, forge fragments into the merge and
// replication log, or fail jobs with repeated error posts.
func TestClusterTokenAuth(t *testing.T) {
	opts := clusterTestOptions(1)
	opts.ClusterToken = "s3cret"
	_, ts := newTestServer(t, opts)

	protocol := []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/cluster/lease"},
		{http.MethodPost, "/v1/cluster/result"},
		{http.MethodPost, "/v1/cluster/heartbeat"},
		{http.MethodPost, "/v1/cluster/release"},
		{http.MethodGet, "/v1/cluster/log"},
	}
	for _, ep := range protocol {
		req, err := http.NewRequest(ep.method, ts.URL+ep.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", ep.method, ep.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s without token = %d, want 401", ep.method, ep.path, resp.StatusCode)
		}

		req, err = http.NewRequest(ep.method, ts.URL+ep.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.TokenHeader, "wrong")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", ep.method, ep.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s with wrong token = %d, want 401", ep.method, ep.path, resp.StatusCode)
		}
	}

	// The right token speaks the protocol normally.
	body, _ := json.Marshal(cluster.LeaseRequest{Worker: "authed"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/cluster/lease", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.TokenHeader, "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("authed lease: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authed lease = %d, want 200", resp.StatusCode)
	}

	// The in-process workers use the local transport, so the pipeline
	// still runs under a token-locked protocol.
	postBody(t, ts.URL+"/v1/mechanisms?wait=1")
}

// TestClusterLeaseValidation checks the protocol endpoints reject
// malformed requests.
func TestClusterLeaseValidation(t *testing.T) {
	_, ts := newTestServer(t, clusterTestOptions(1))

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/cluster/lease", cluster.LeaseRequest{}, nil)
	wantStatus(t, resp, http.StatusBadRequest)

	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/cluster/result",
		cluster.ResultRequest{Worker: "w"}, nil)
	wantStatus(t, resp, http.StatusBadRequest)
}
