package server

import (
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"filtermap/internal/cluster"
)

// clusterTestOptions enables coordinator+local-worker mode tuned for
// test latency.
func clusterTestOptions(workers int) Options {
	return Options{Cluster: &ClusterOptions{
		Role:         RoleBoth,
		LocalWorkers: workers,
		WorkerPoll:   2 * time.Millisecond,
	}}
}

// postBody posts to url and returns the raw response body.
func postBody(t *testing.T, url string) []byte {
	t.Helper()
	resp := doJSON(t, http.MethodPost, url, nil, nil)
	wantStatus(t, resp, http.StatusOK)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return b
}

// TestClusterDisabled checks the protocol surface without cluster mode:
// worker endpoints 409, the status doc reports disabled, and the
// replication log still serves (any fmserve can be a log source).
func TestClusterDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/cluster/lease", cluster.LeaseRequest{Worker: "w"}, nil)
	wantStatus(t, resp, http.StatusConflict)

	var status cluster.StatusDoc
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster", nil, &status)
	wantStatus(t, resp, http.StatusOK)
	if status.Enabled {
		t.Fatal("status.Enabled = true on a standalone server")
	}

	var logResp cluster.LogResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/log", nil, &logResp)
	wantStatus(t, resp, http.StatusOK)
}

// TestClusterByteIdentity is the core determinism contract: every
// shardable kind served by a coordinator+workers cluster must be
// byte-identical to the standalone single-process answer.
func TestClusterByteIdentity(t *testing.T) {
	_, plain := newTestServer(t, Options{})
	_, clustered := newTestServer(t, clusterTestOptions(2))

	for _, kind := range []string{"identify", "mechanisms", "discover", "characterize"} {
		path := "/v1/" + kind + "?wait=1"
		want := postBody(t, plain.URL+path)
		got := postBody(t, clustered.URL+path)
		if string(got) != string(want) {
			t.Errorf("%s: clustered body differs from single-process\nclustered: %.300s\nsingle:    %.300s", kind, got, want)
		}
	}
}

// TestClusterStatusMetricsAndLog exercises the observability surface
// after real clustered runs: /v1/cluster counters, the /metrics cluster
// section, and the replication-log tail fed by OnComplete appends.
func TestClusterStatusMetricsAndLog(t *testing.T) {
	_, ts := newTestServer(t, clusterTestOptions(2))

	postBody(t, ts.URL+"/v1/mechanisms?wait=1")

	var status cluster.StatusDoc
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/cluster", nil, &status)
	wantStatus(t, resp, http.StatusOK)
	if !status.Enabled || status.Role != RoleBoth {
		t.Fatalf("status = %+v, want enabled role=both", status)
	}
	if len(status.Workers) == 0 {
		t.Fatal("status lists no workers after a clustered run")
	}
	if status.Counters.JobsDone == 0 || status.Counters.ShardsDone == 0 || status.Counters.LeasesGranted == 0 {
		t.Fatalf("counters untouched after a clustered run: %+v", status.Counters)
	}

	var metrics MetricsDoc
	resp = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &metrics)
	wantStatus(t, resp, http.StatusOK)
	if metrics.Cluster == nil {
		t.Fatal("/metrics omits the cluster section in cluster mode")
	}
	if metrics.Cluster.Role != RoleBoth || metrics.Cluster.Counters.ShardsDone == 0 {
		t.Fatalf("/metrics cluster section = %+v", metrics.Cluster)
	}

	// The completed run appended to the store — the replication log.
	var logResp cluster.LogResponse
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/log", nil, &logResp)
	wantStatus(t, resp, http.StatusOK)
	if len(logResp.Records) == 0 || logResp.LastSeq == 0 {
		t.Fatalf("replication log empty after a clustered run: %+v", logResp)
	}
	if logResp.Records[0].Meta.Note != "cluster" {
		t.Fatalf("log record note = %q, want cluster", logResp.Records[0].Meta.Note)
	}

	// Tailing from the end returns nothing new.
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/log?after="+
		strconv.FormatUint(logResp.LastSeq, 10), nil, &logResp)
	wantStatus(t, resp, http.StatusOK)
	if len(logResp.Records) != 0 {
		t.Fatalf("tail past LastSeq returned %d records", len(logResp.Records))
	}
}

// TestClusterLeaseValidation checks the protocol endpoints reject
// malformed requests.
func TestClusterLeaseValidation(t *testing.T) {
	_, ts := newTestServer(t, clusterTestOptions(1))

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/cluster/lease", cluster.LeaseRequest{}, nil)
	wantStatus(t, resp, http.StatusBadRequest)

	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/cluster/result",
		cluster.ResultRequest{Worker: "w"}, nil)
	wantStatus(t, resp, http.StatusBadRequest)
}
