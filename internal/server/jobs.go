package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: queued -> running -> done | failed. Cancellation moves
// a queued or running job to failed with ErrJobCanceled as its error.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ErrJobCanceled is the failure recorded for canceled jobs.
var ErrJobCanceled = errors.New("job canceled")

// errShuttingDown rejects new work during drain.
var errShuttingDown = errors.New("server shutting down")

// job is one background pipeline execution.
type job struct {
	id      string
	kind    string
	key     string
	req     any
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	created time.Time

	// Fields below are guarded by the manager's mutex.
	state    JobState
	errMsg   string
	result   []byte
	started  time.Time
	finished time.Time
}

// jobManager owns the background job queue: a fixed worker pool pops
// queued jobs in submission order, identical active requests dedupe onto
// one job, and shutdown stops intake and drains what is in flight.
type jobManager struct {
	run func(ctx context.Context, j *job) ([]byte, error)
	now func() time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	order  []string
	active map[string]*job // canonical request key -> queued/running job
	queue  []*job
	seq    int
	closed bool

	wg sync.WaitGroup
}

func newJobManager(workers int, now func() time.Time, run func(context.Context, *job) ([]byte, error)) *jobManager {
	if workers < 1 {
		workers = 2
	}
	m := &jobManager{
		run:    run,
		now:    now,
		jobs:   make(map[string]*job),
		active: make(map[string]*job),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// submit enqueues a job, deduplicating against an active (queued or
// running) job with the same canonical key. existing reports whether the
// returned job predates this call.
func (m *jobManager) submit(kind, key string, req any) (j *job, existing bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, errShuttingDown
	}
	if cur, ok := m.active[key]; ok {
		return cur, true, nil
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j = &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		kind:    kind,
		key:     key,
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		created: m.now(),
		state:   JobQueued,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.active[key] = j
	m.queue = append(m.queue, j)
	m.cond.Signal()
	return j, false, nil
}

// get returns a job by id.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (m *jobManager) list() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// cancelJob cancels a queued or running job. It reports false when the
// job already finished.
func (m *jobManager) cancelJob(j *job) bool {
	m.mu.Lock()
	switch j.state {
	case JobDone, JobFailed:
		m.mu.Unlock()
		return false
	case JobQueued:
		// Finish it here: the worker will skip it when it reaches the
		// queue entry.
		m.finishLocked(j, nil, ErrJobCanceled)
		m.mu.Unlock()
		j.cancel()
		return true
	default: // running
		m.mu.Unlock()
		j.cancel() // the runner observes ctx and returns; worker records the failure
		return true
	}
}

// next blocks until a runnable job is available; nil means the manager
// is closed and the queue is drained.
func (m *jobManager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for len(m.queue) > 0 {
			j := m.queue[0]
			m.queue = m.queue[1:]
			if j.state != JobQueued { // canceled while queued
				continue
			}
			j.state = JobRunning
			j.started = m.now()
			return j
		}
		if m.closed {
			return nil
		}
		m.cond.Wait()
	}
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		val, err := m.run(j.ctx, j)
		if err != nil && j.ctx.Err() != nil {
			err = ErrJobCanceled
		}
		m.mu.Lock()
		m.finishLocked(j, val, err)
		m.mu.Unlock()
		j.cancel()
	}
}

// finishLocked records a job's terminal state. Idempotent: cancellation
// and the worker may race to finish the same job.
func (m *jobManager) finishLocked(j *job, val []byte, err error) {
	if j.state == JobDone || j.state == JobFailed {
		return
	}
	j.finished = m.now()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = val
	}
	delete(m.active, j.key)
	close(j.done)
}

// counts is the /metrics state census.
func (m *jobManager) counts() JobCountsDoc {
	m.mu.Lock()
	defer m.mu.Unlock()
	var c JobCountsDoc
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			c.Queued++
		case JobRunning:
			c.Running++
		case JobDone:
			c.Done++
		case JobFailed:
			c.Failed++
		}
	}
	return c
}

// shutdown stops intake and drains: workers finish the queue and every
// in-flight job before returning. If ctx expires first, remaining jobs
// are hard-canceled and shutdown waits for the workers to observe that.
func (m *jobManager) shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.state == JobQueued || j.state == JobRunning {
				j.cancel()
				if j.state == JobQueued {
					m.finishLocked(j, nil, ErrJobCanceled)
				}
			}
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// JobDoc is the JSON rendering of a job for /v1/jobs responses.
type JobDoc struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	State    JobState        `json:"state"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	// Degraded mirrors the result document's top-level degraded marker,
	// so job listings surface partial runs without shipping result bodies.
	Degraded bool `json:"degraded,omitempty"`
}

// doc freezes a job into its JSON form. includeResult controls whether
// the (possibly large) result body rides along.
func (m *jobManager) doc(j *job, includeResult bool) JobDoc {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := JobDoc{
		ID:      j.id,
		Kind:    j.kind,
		State:   j.state,
		Created: j.created,
		Error:   j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		d.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.Finished = &t
	}
	if j.state == JobDone {
		var probe struct {
			Degraded bool `json:"degraded"`
		}
		if json.Unmarshal(j.result, &probe) == nil {
			d.Degraded = probe.Degraded
		}
		if includeResult {
			d.Result = json.RawMessage(j.result)
		}
	}
	return d
}
