package server

import (
	"sort"
	"sync"
	"time"

	"filtermap/internal/cluster"
	"filtermap/internal/engine"
	"filtermap/internal/monitor"
)

// metrics aggregates everything GET /metrics reports: per-endpoint
// request counters and latencies, cache effectiveness, per-kind pipeline
// run counts, and the engine's per-stage Stats/Observer streams bridged
// from every world the server builds.
type metrics struct {
	mu        sync.Mutex
	startedAt time.Time
	endpoints map[string]*endpointStats
	hits      uint64
	misses    uint64
	coalesced uint64
	limited   uint64
	runs      map[string]uint64
	// runsDegraded counts, per kind, runs whose report came back with a
	// Degraded marker (partial results under fault injection).
	runsDegraded map[string]uint64

	snapshots        uint64
	snapshotsDeduped uint64
	diffs            uint64
	invalidated      uint64

	// clusterAppendErrors counts merged cluster documents that failed to
	// append to the snapshot store — records missing from the
	// replication log that clients nevertheless received.
	clusterAppendErrors uint64

	// engineStats and engineEvents are installed into every world's
	// engine config, so pipeline stages report here across runs.
	engineStats  *engine.Stats
	engineEvents *engine.CountingObserver
}

type endpointStats struct {
	requests uint64
	errors   uint64
	totalLat time.Duration
	maxLat   time.Duration
}

func newMetrics(now time.Time) *metrics {
	return &metrics{
		startedAt:    now,
		endpoints:    make(map[string]*endpointStats),
		runs:         make(map[string]uint64),
		runsDegraded: make(map[string]uint64),
		engineStats:  engine.NewStats(),
		engineEvents: engine.NewCountingObserver(),
	}
}

// record accounts one finished HTTP request against its route pattern.
func (m *metrics) record(route string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es, ok := m.endpoints[route]
	if !ok {
		es = &endpointStats{}
		m.endpoints[route] = es
	}
	es.requests++
	if status >= 400 {
		es.errors++
	}
	es.totalLat += elapsed
	if elapsed > es.maxLat {
		es.maxLat = elapsed
	}
}

func (m *metrics) cacheHit()    { m.mu.Lock(); m.hits++; m.mu.Unlock() }
func (m *metrics) cacheMiss()   { m.mu.Lock(); m.misses++; m.mu.Unlock() }
func (m *metrics) cacheShared() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *metrics) rateLimited() { m.mu.Lock(); m.limited++; m.mu.Unlock() }

// snapshotRecorded accounts one POST /v1/snapshots append (deduped when
// the store collapsed it onto an existing record).
func (m *metrics) snapshotRecorded(deduped bool) {
	m.mu.Lock()
	m.snapshots++
	if deduped {
		m.snapshotsDeduped++
	}
	m.mu.Unlock()
}

// clusterAppendError accounts one merged cluster document dropped from
// the replication log by a marshal/append failure.
func (m *metrics) clusterAppendError() { m.mu.Lock(); m.clusterAppendErrors++; m.mu.Unlock() }

// clusterAppendErrorCount reads the census for /metrics.
func (m *metrics) clusterAppendErrorCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clusterAppendErrors
}

// diffComputed accounts one longitudinal diff execution (cache misses
// only; cached diffs count as cache hits).
func (m *metrics) diffComputed() { m.mu.Lock(); m.diffs++; m.mu.Unlock() }

// cacheInvalidated accounts result-cache entries dropped because a newer
// snapshot superseded them (delta-aware invalidation).
func (m *metrics) cacheInvalidated(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.invalidated += uint64(n)
	m.mu.Unlock()
}

// run accounts one underlying pipeline execution of the given kind.
func (m *metrics) run(kind string) {
	m.mu.Lock()
	m.runs[kind]++
	m.mu.Unlock()
}

// runDegraded accounts one pipeline execution that completed with
// partial results.
func (m *metrics) runDegraded(kind string) {
	m.mu.Lock()
	m.runsDegraded[kind]++
	m.mu.Unlock()
}

// MetricsDoc is the GET /metrics response body.
type MetricsDoc struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Endpoints     map[string]EndpointDoc `json:"endpoints"`
	Cache         CacheDoc               `json:"cache"`
	Jobs          JobCountsDoc           `json:"jobs"`
	Runs          map[string]uint64      `json:"runs"`
	// RunsDegraded counts runs that completed with partial results,
	// per kind (omitted while empty).
	RunsDegraded map[string]uint64             `json:"runs_degraded,omitempty"`
	RateLimited  uint64                        `json:"rate_limited"`
	Snapshots    SnapshotCountsDoc             `json:"snapshots"`
	Engine       engine.Snapshot               `json:"engine"`
	EngineEvents map[string]engine.EventCounts `json:"engine_events"`
	// Monitor carries the continuous-measurement scheduler counters
	// (omitted when the monitor is disabled).
	Monitor *monitor.Counters `json:"monitor,omitempty"`
	// Watch is the /v1/watch fan-out census.
	Watch WatchDoc `json:"watch"`
	// Cluster carries the coordinator's shard/lease/steal counters
	// (omitted when cluster mode is off).
	Cluster *ClusterMetricsDoc `json:"cluster,omitempty"`
	// Replica carries the replication-log follower's census (omitted
	// unless this server tails a coordinator's log).
	Replica *cluster.FollowerCounters `json:"replica,omitempty"`
}

// ClusterMetricsDoc is the coordinator's /metrics entry.
type ClusterMetricsDoc struct {
	Role string `json:"role"`
	// Workers counts live ring members.
	Workers  int              `json:"workers"`
	Counters cluster.Counters `json:"counters"`
	// AppendErrors counts merged documents that failed to append to the
	// snapshot store: the replication log is missing records that
	// clients received. Anything non-zero means followers and
	// /v1/snapshots have silently diverged from served results.
	AppendErrors uint64 `json:"append_errors"`
}

// WatchDoc is the event-stream fan-out census: live subscribers, events
// delivered to subscriber channels, subscribers dropped for falling
// behind, and the newest event ID.
type WatchDoc struct {
	Subscribers int    `json:"subscribers"`
	Delivered   uint64 `json:"events_delivered"`
	Dropped     uint64 `json:"subscribers_dropped"`
	LastEventID uint64 `json:"last_event_id"`
}

// EndpointDoc is one route's counters.
type EndpointDoc struct {
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	MeanLatNs int64  `json:"mean_latency_ns"`
	MaxLatNs  int64  `json:"max_latency_ns"`
}

// CacheDoc is the result cache's effectiveness counters. Hits are
// served straight from the cache; coalesced requests joined an in-flight
// identical run (singleflight); misses triggered a pipeline execution.
type CacheDoc struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Entries   int    `json:"entries"`
	// Invalidated counts entries dropped because a newer snapshot for
	// their (kind, config) superseded them before the TTL ran out.
	Invalidated uint64 `json:"invalidated"`
}

// SnapshotCountsDoc is the longitudinal layer's counters: snapshot
// appends (and how many deduped onto existing records) plus computed
// diffs.
type SnapshotCountsDoc struct {
	Recorded uint64 `json:"recorded"`
	Deduped  uint64 `json:"deduped"`
	Diffs    uint64 `json:"diffs"`
	Stored   int    `json:"stored"`
}

// JobCountsDoc is the job manager's state census.
type JobCountsDoc struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// snapshot freezes every counter into the /metrics document.
func (m *metrics) snapshot(now time.Time, cacheEntries int, jobs JobCountsDoc, snapsStored int) MetricsDoc {
	m.mu.Lock()
	doc := MetricsDoc{
		UptimeSeconds: now.Sub(m.startedAt).Seconds(),
		Endpoints:     make(map[string]EndpointDoc, len(m.endpoints)),
		Cache: CacheDoc{
			Hits:        m.hits,
			Misses:      m.misses,
			Coalesced:   m.coalesced,
			Entries:     cacheEntries,
			Invalidated: m.invalidated,
		},
		Jobs:        jobs,
		Runs:        make(map[string]uint64, len(m.runs)),
		RateLimited: m.limited,
		Snapshots: SnapshotCountsDoc{
			Recorded: m.snapshots,
			Deduped:  m.snapshotsDeduped,
			Diffs:    m.diffs,
			Stored:   snapsStored,
		},
	}
	for route, es := range m.endpoints {
		ed := EndpointDoc{Requests: es.requests, Errors: es.errors, MaxLatNs: int64(es.maxLat)}
		if es.requests > 0 {
			ed.MeanLatNs = int64(es.totalLat) / int64(es.requests)
		}
		doc.Endpoints[route] = ed
	}
	for kind, n := range m.runs {
		doc.Runs[kind] = n
	}
	if len(m.runsDegraded) > 0 {
		doc.RunsDegraded = make(map[string]uint64, len(m.runsDegraded))
		for kind, n := range m.runsDegraded {
			doc.RunsDegraded[kind] = n
		}
	}
	m.mu.Unlock()

	doc.Engine = m.engineStats.Snapshot()
	doc.EngineEvents = m.engineEvents.Counts()
	sort.Slice(doc.Engine.Stages, func(i, j int) bool { return doc.Engine.Stages[i].Stage < doc.Engine.Stages[j].Stage })
	return doc
}
