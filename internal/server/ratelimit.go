package server

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key (API key or
// remote host) accrues rate tokens per second up to burst, and every
// request spends one. A nil limiter or rate <= 0 admits everything.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 8
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*tokenBucket)}
}

// allow reports whether the client may proceed, spending a token if so.
func (l *rateLimiter) allow(client string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxTrackedClients {
			l.pruneLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// maxTrackedClients bounds the bucket map; beyond it, full (idle)
// buckets are dropped — they rebuild at full burst on next sight, which
// only ever errs in the client's favour.
const maxTrackedClients = 4096

func (l *rateLimiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		refilled := b.tokens + now.Sub(b.last).Seconds()*l.rate
		if refilled >= l.burst {
			delete(l.buckets, k)
		}
	}
}
