package server

import (
	"sort"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key (API key or
// remote host) accrues rate tokens per second up to burst, and every
// request spends one. A nil limiter or rate <= 0 admits everything.
//
// The bucket map is bounded two ways. A periodic idle sweep (every
// sweepEvery admissions) drops buckets that have refilled to burst —
// clients idle long enough to have forgotten any debt. If churning
// client IPs outrun the sweep (buckets that are neither full nor
// active), a hard eviction drops the least-recently-seen buckets down
// to maxTrackedClients. Both err in the client's favour: an evicted
// client rebuilds at full burst on next sight.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	now     func() time.Time
	buckets map[string]*tokenBucket
	// admissions counts allow() calls since the last idle sweep.
	admissions int
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedClients bounds the bucket map.
const maxTrackedClients = 4096

// sweepEvery paces the idle sweep: one full-map pass per this many
// allow() calls keeps amortized cost O(1) per request.
const sweepEvery = 1024

// evictBatch is how far below the cap a hard eviction clears, so the
// recency sort amortizes over that many subsequent insertions.
const evictBatch = 256

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 8
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*tokenBucket)}
}

// allow reports whether the client may proceed, spending a token if so.
func (l *rateLimiter) allow(client string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.admissions++
	if l.admissions >= sweepEvery {
		l.admissions = 0
		l.pruneLocked(now)
	}
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxTrackedClients {
			l.pruneLocked(now)
			// Evict down to a margin below the cap, not just one slot:
			// one O(n log n) recency sort then pays for evictBatch
			// insertions before the next.
			if over := len(l.buckets) - maxTrackedClients + evictBatch; over > 0 {
				l.evictOldestLocked(over)
			}
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets whose balance has refilled to burst — the
// client has been idle long enough that forgetting it changes nothing.
func (l *rateLimiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		refilled := b.tokens + now.Sub(b.last).Seconds()*l.rate
		if refilled >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// evictOldestLocked force-drops the n least-recently-seen buckets. This
// is the churning-IP backstop: when slow refill keeps pruneLocked from
// freeing anything, recency decides who is forgotten.
func (l *rateLimiter) evictOldestLocked(n int) {
	type entry struct {
		key  string
		last time.Time
	}
	entries := make([]entry, 0, len(l.buckets))
	for k, b := range l.buckets {
		entries = append(entries, entry{key: k, last: b.last})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].last.Equal(entries[j].last) {
			return entries[i].last.Before(entries[j].last)
		}
		return entries[i].key < entries[j].key
	})
	if n > len(entries) {
		n = len(entries)
	}
	for _, e := range entries[:n] {
		delete(l.buckets, e.key)
	}
}

// size reports the tracked-client count (tests and metrics).
func (l *rateLimiter) size() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
