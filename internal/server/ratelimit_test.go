package server

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterIdleSweep checks that buckets refilled to burst are
// dropped by the periodic sweep instead of living forever.
func TestRateLimiterIdleSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(10, 5, func() time.Time { return now })

	for i := 0; i < 100; i++ {
		l.allow(fmt.Sprintf("idle-%d", i))
	}
	if got := l.size(); got != 100 {
		t.Fatalf("tracked = %d, want 100", got)
	}

	// A long idle period refills everyone; the next sweep forgets them.
	now = now.Add(time.Hour)
	for i := 0; i < sweepEvery; i++ {
		l.allow("active")
	}
	if got := l.size(); got > 2 {
		t.Fatalf("tracked = %d after idle sweep, want ≤ 2 (active client only)", got)
	}
}

// TestRateLimiterChurningClientsBounded is the satellite regression: a
// flood of distinct client IPs, all mid-debt so the idle sweep frees
// nothing, must not grow the map past maxTrackedClients.
func TestRateLimiterChurningClientsBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(0.001, 1, func() time.Time { return now })

	for i := 0; i < 3*maxTrackedClients; i++ {
		// Each client spends its single burst token immediately, so no
		// bucket ever refills; only LRU eviction can bound the map.
		l.allow(fmt.Sprintf("churn-%d", i))
		now = now.Add(time.Millisecond)
	}
	if got := l.size(); got > maxTrackedClients {
		t.Fatalf("tracked = %d, want ≤ %d (hard LRU bound)", got, maxTrackedClients)
	}
}

// TestRateLimiterStillLimitsAfterEviction checks eviction does not break
// enforcement: an active client keeps being throttled.
func TestRateLimiterStillLimitsAfterEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(1, 2, func() time.Time { return now })

	if !l.allow("victim") || !l.allow("victim") {
		t.Fatal("burst not granted")
	}
	if l.allow("victim") {
		t.Fatal("third request within the same instant should be limited")
	}
	// Unrelated churn (possibly evicting and rebuilding buckets) must
	// not mint tokens for the active client within the same instant.
	for i := 0; i < 100; i++ {
		l.allow(fmt.Sprintf("noise-%d", i))
	}
	if l.allow("victim") {
		t.Fatal("client got a token without time passing")
	}
	// After a second it earns exactly one token back.
	now = now.Add(time.Second)
	if !l.allow("victim") {
		t.Fatal("refill after 1s denied")
	}
	if l.allow("victim") {
		t.Fatal("got two tokens from a 1s refill at rate 1")
	}
}
