// Package server is the fmserve service layer: an HTTP JSON API that
// exposes the identify/confirm/characterize pipelines over a long-lived
// World, with a TTL result cache and singleflight deduplication on the
// hot path, a background job manager for long-running scans and Table 3
// campaigns, per-client token-bucket rate limiting, request-size limits,
// and a metrics endpoint bridging the engine's Stats/Observer streams.
//
// Endpoints:
//
//	POST /v1/identify      §3 pipeline   (sync when cached; ?wait=1 blocks; else enqueues)
//	POST /v1/confirm       §4 campaigns  (same dispatch)
//	POST /v1/characterize  §5 runs       (same dispatch)
//	POST /v1/discover      crawl-based blocked-URL discovery (same dispatch)
//	POST /v1/mechanisms    DNS/RST/SNI mechanism survey (same dispatch)
//	POST /v1/jobs          submit a background job {kind, request}
//	GET  /v1/jobs          list jobs
//	GET  /v1/jobs/{id}     job state + result
//	DELETE /v1/jobs/{id}   cancel
//	GET  /v1/reports/{kind}  table1|table3|table4|figure1|installations|mechanisms (sync)
//	GET  /healthz          liveness
//	GET  /metrics          request/cache/job/engine counters
//
// Worlds: identification runs against the server's long-lived base world
// with a banner index scanned once and reused; confirmation and
// characterization build a fresh world per execution because campaigns
// consume the virtual timeline (clock advancement, vendor submissions).
// Requests carrying evasion options always get a fresh world.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"filtermap/internal/cluster"
	"filtermap/internal/confirm"
	"filtermap/internal/engine"
	"filtermap/internal/fingerprint"
	"filtermap/internal/longitudinal"
	"filtermap/internal/monitor"
	"filtermap/internal/report"
	"filtermap/internal/scanner"
	"filtermap/internal/store"
	"filtermap/internal/version"
	"filtermap/internal/world"
)

// Pipeline kinds accepted by the job and dispatch endpoints.
const (
	KindIdentify     = "identify"
	KindConfirm      = "confirm"
	KindCharacterize = "characterize"
	KindDiscover     = "discover"
	KindMechanisms   = "mechanisms"
)

// Options configures a Server. The zero value serves the default world
// with a 5-minute cache, two job workers, no rate limit, and a 1 MiB
// request-size cap.
type Options struct {
	// World configures the base simulated Internet the server holds for
	// its lifetime.
	World world.Options
	// CacheTTL bounds result-cache entry lifetime (0 = 5m; < 0 disables
	// caching while keeping singleflight deduplication).
	CacheTTL time.Duration
	// CacheEntries bounds the cache size (0 = 256).
	CacheEntries int
	// JobWorkers sizes the background job pool (0 = 2).
	JobWorkers int
	// RatePerSec enables per-client token-bucket rate limiting when > 0.
	RatePerSec float64
	// RateBurst is the bucket depth (0 = 8; only meaningful with
	// RatePerSec).
	RateBurst int
	// MaxRequestBytes caps request bodies (0 = 1 MiB).
	MaxRequestBytes int64
	// StoreDir roots the longitudinal snapshot store ("" = in-memory:
	// snapshots work but do not survive the process).
	StoreDir string
	// Monitor enables the continuous-measurement scheduler (nil =
	// disabled; /v1/watch still serves, streaming snapshot-append events
	// from the API surface). The monitor drives its own world; its Broker
	// and Store fields are overwritten with the server's.
	Monitor *monitor.Options
	// WatchRetain bounds the /v1/watch replay tail (0 = broker default).
	WatchRetain int
	// Cluster enables coordinator-mode scan-out: shardable pipeline
	// requests (identify/characterize/discover/mechanisms) fan out to
	// workers over /v1/cluster/* instead of running in-process (nil =
	// single-process execution).
	Cluster *ClusterOptions
	// ClusterToken, when set, protects the /v1/cluster/* worker and
	// replication-log endpoints: requests must carry it in the
	// X-Cluster-Token header or they are rejected with 401, and only
	// authenticated cluster requests bypass the rate limiter. Empty
	// leaves the protocol open (trusted-network deployments). The same
	// token authenticates this server's outgoing Follow polling.
	ClusterToken string
	// Follow makes this server a read-only serving replica: it tails the
	// named coordinator's replication log (GET /v1/cluster/log) into its
	// own snapshot store. The replica must take no local snapshot writes.
	Follow string
	// FollowInterval paces the log polling (0 = 2s; with Follow).
	FollowInterval time.Duration

	// now substitutes the clock in tests (nil = time.Now).
	now func() time.Time
}

// Server is the HTTP service. It implements http.Handler.
type Server struct {
	opts    Options
	engOpts []engine.Option
	handler http.Handler

	metrics *metrics
	cache   *resultCache
	flight  *flightGroup
	jobs    *jobManager
	limiter *rateLimiter

	base    *world.World
	baseMu  sync.Mutex // guards the lazy base-world banner scan
	baseIdx *scanner.Index

	snaps   *store.Store
	diffEng *longitudinal.Engine

	broker *monitor.Broker
	mon    *monitor.Monitor

	clusterRt    *clusterRuntime
	follower     *cluster.Follower
	followCancel context.CancelFunc
	followWg     sync.WaitGroup

	// execHook intercepts pipeline executions in tests (nil in
	// production).
	execHook func(ctx context.Context, kind string) error

	closeOnce sync.Once
}

// New builds the server and its long-lived base world. Engine options
// (filtermap.WithWorkers, ...) tune every world the server constructs;
// the server always adds its own stats registry and counting observer so
// /metrics sees every pipeline stage.
func New(opts Options, engOpts ...engine.Option) (*Server, error) {
	if opts.CacheTTL == 0 {
		opts.CacheTTL = 5 * time.Minute
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 256
	}
	if opts.MaxRequestBytes == 0 {
		opts.MaxRequestBytes = 1 << 20
	}
	if opts.now == nil {
		opts.now = time.Now
	}

	s := &Server{
		opts:    opts,
		metrics: newMetrics(opts.now()),
		flight:  newFlightGroup(),
	}
	s.cache = newResultCache(opts.CacheTTL, opts.CacheEntries, opts.now)
	s.limiter = newRateLimiter(opts.RatePerSec, opts.RateBurst, opts.now)

	// Bridge every world's engine into the metrics registry, preserving
	// any caller-supplied observer.
	callerCfg := engine.NewConfig(engOpts...)
	s.engOpts = append(append([]engine.Option{}, engOpts...),
		engine.WithStats(s.metrics.engineStats),
		engine.WithObserver(engine.MultiObserver(callerCfg.Observer, s.metrics.engineEvents)),
	)

	base, err := world.Build(opts.World, s.engOpts...)
	if err != nil {
		return nil, fmt.Errorf("server: build base world: %w", err)
	}
	s.base = base

	s.snaps, err = store.Open(opts.StoreDir)
	if err != nil {
		base.Close()
		return nil, fmt.Errorf("server: open snapshot store: %w", err)
	}
	s.diffEng = &longitudinal.Engine{Config: engine.NewConfig(s.engOpts...)}

	// Delta-aware invalidation: a snapshot append for a (kind, config)
	// pair kills cached reports for that pair immediately instead of
	// letting them ride out the TTL. Diff cache entries are
	// content-addressed and never go stale, so they stay.
	s.broker = monitor.NewBroker(opts.WatchRetain)
	s.snaps.OnAppend(func(meta store.Meta) {
		pk, ok := pipelineKindFor(meta.Kind)
		if !ok {
			return
		}
		s.metrics.cacheInvalidated(s.cache.invalidatePrefix(pk + ":" + meta.Config + ":"))
	})

	if opts.Monitor != nil {
		mo := *opts.Monitor
		mo.Broker = s.broker
		if mo.World == (world.Options{}) {
			mo.World = opts.World
		}
		if len(mo.Engine) == 0 {
			mo.Engine = s.engOpts
		}
		s.mon, err = monitor.New(mo, s.snaps)
		if err != nil {
			s.snaps.Close() //nolint:errcheck // constructor teardown
			base.Close()
			return nil, fmt.Errorf("server: build monitor: %w", err)
		}
	}

	if opts.Cluster != nil {
		s.startCluster(*opts.Cluster)
	}
	if opts.Follow != "" {
		s.follower = &cluster.Follower{
			URL:      opts.Follow,
			Token:    opts.ClusterToken,
			Store:    s.snaps,
			Interval: opts.FollowInterval,
			OnApply: func(meta store.Meta) {
				s.broker.Publish(monitor.Event{
					At: meta.At, Type: monitor.EventSnapshot,
					Plan: "replica", Kind: meta.Kind,
					Seq: meta.Seq, SnapshotID: meta.ID,
					Note: meta.Note,
				})
			},
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.followCancel = cancel
		s.followWg.Add(1)
		go func() {
			defer s.followWg.Done()
			s.follower.Run(ctx) //nolint:errcheck // exits on cancel
		}()
	}

	s.jobs = newJobManager(opts.JobWorkers, opts.now, func(ctx context.Context, j *job) ([]byte, error) {
		return s.cachedRun(ctx, j.kind, j.key, j.req)
	})

	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/identify", s.handleIdentify)
	handle("POST /v1/confirm", s.handleConfirm)
	handle("POST /v1/characterize", s.handleCharacterize)
	handle("POST /v1/discover", s.handleDiscover)
	handle("POST /v1/mechanisms", s.handleMechanisms)
	handle("POST /v1/jobs", s.handleJobSubmit)
	handle("GET /v1/jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("DELETE /v1/jobs/{id}", s.handleJobCancel)
	handle("GET /v1/reports/{kind}", s.handleReport)
	handle("POST /v1/snapshots", s.handleSnapshotRecord)
	handle("GET /v1/snapshots", s.handleSnapshotList)
	handle("GET /v1/snapshots/{id}", s.handleSnapshotGet)
	handle("GET /v1/diff", s.handleDiff)
	handle("GET /v1/watch", s.handleWatch)
	handle("GET /v1/monitor", s.handleMonitorStatus)
	handle("POST /v1/monitor/tick", s.handleMonitorTick)
	handle("POST /v1/cluster/lease", s.handleClusterLease)
	handle("POST /v1/cluster/result", s.handleClusterResult)
	handle("POST /v1/cluster/heartbeat", s.handleClusterHeartbeat)
	handle("POST /v1/cluster/release", s.handleClusterRelease)
	handle("GET /v1/cluster", s.handleClusterStatus)
	handle("GET /v1/cluster/log", s.handleClusterLog)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	s.handler = s.root(mux)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Shutdown drains gracefully: job intake stops, workers finish the queue
// and every in-flight job (hard-canceling only if ctx expires), then the
// base world closes. The HTTP listener is the caller's to stop first
// (http.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.jobs.shutdown(ctx)
	s.closeOnce.Do(func() {
		if s.followCancel != nil {
			s.followCancel()
			s.followWg.Wait()
		}
		s.clusterRt.stop()
		if s.mon != nil {
			s.mon.Close()
		}
		s.base.Close()
		if serr := s.snaps.Close(); serr != nil && err == nil {
			err = serr
		}
	})
	return err
}

// root is the outermost middleware: rate limiting (healthz and the
// authenticated cluster worker/replica protocol exempt) and the
// request-size cap. An unauthenticated request to a cluster path gets
// no exemption: it pays the rate limiter like any other client before
// the handler rejects it with 401.
func (s *Server) root(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		exempt := r.URL.Path == "/healthz" ||
			(clusterPath(r.URL.Path) && s.clusterAuthorized(r))
		if !exempt && !s.limiter.allow(clientKey(r)) {
			s.metrics.rateLimited()
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		if r.Body != nil && s.opts.MaxRequestBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// clientKey identifies the requester for rate limiting: the API key
// header when present, else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

// instrument records per-endpoint request counts and latencies.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.opts.now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.metrics.record(route, sw.status, s.opts.now().Sub(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards streaming flushes so /v1/watch can serve SSE through
// the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ---- request types ----

// WorldConfig selects the Table 5 evasion scenarios and ablations for a
// run. The zero value means "the server's base world"; any flag set
// builds a dedicated world for the run.
type WorldConfig struct {
	HideConsoles      bool `json:"hide_consoles,omitempty"`
	ScrubHeaders      bool `json:"scrub_headers,omitempty"`
	FilterSubmissions bool `json:"filter_submissions,omitempty"`
	DisableDuSyncLag  bool `json:"disable_du_sync_lag,omitempty"`
	// Mechanisms enables the DNS/RST/SNI censoring-ISP roster (the
	// mechanism survey's world). Kept a bool so WorldConfig stays
	// comparable; options() expands it to world.MechanismOptions.
	Mechanisms bool `json:"mechanisms,omitempty"`
}

func (c WorldConfig) zero() bool { return c == WorldConfig{} }

// options overlays the request's evasion flags on the server's base
// world options (keeping seed and start time).
func (c WorldConfig) options(base world.Options) world.Options {
	base.HideConsoles = c.HideConsoles
	base.ScrubHeaders = c.ScrubHeaders
	base.FilterSubmissions = c.FilterSubmissions
	base.DisableDuSyncLag = c.DisableDuSyncLag
	if c.Mechanisms {
		base.Mechanisms = &world.MechanismOptions{}
	} else {
		base.Mechanisms = nil
	}
	return base
}

// IdentifyRequest parameterizes POST /v1/identify.
type IdentifyRequest struct {
	// Products restricts the keyword fan-out (empty = all Table 2
	// products).
	Products []string `json:"products,omitempty"`
	// Countries bounds the ccTLD fan-out (empty = every country in the
	// banner index).
	Countries []string `json:"countries,omitempty"`
	// World selects evasion scenarios; non-zero runs on a fresh world.
	World WorldConfig `json:"world,omitempty"`
}

func (r *IdentifyRequest) normalize() error {
	r.Products = sortDedupe(r.Products)
	r.Countries = sortDedupe(r.Countries)
	known := fingerprint.ShodanKeywords()
	for _, p := range r.Products {
		if _, ok := known[p]; !ok {
			return badRequestf("unknown product %q", p)
		}
	}
	return nil
}

// ConfirmRequest parameterizes POST /v1/confirm.
type ConfirmRequest struct {
	// Campaign selects one Table 3 case study by key (empty = all ten,
	// chronologically).
	Campaign string `json:"campaign,omitempty"`
	// World selects evasion scenarios for the campaign world.
	World WorldConfig `json:"world,omitempty"`
}

func (r *ConfirmRequest) normalize() error {
	r.Campaign = strings.TrimSpace(r.Campaign)
	return nil
}

// CharacterizeRequest parameterizes POST /v1/characterize.
type CharacterizeRequest struct {
	// ISPs restricts the §5 targets (empty = all confirmed deployments).
	ISPs []string `json:"isps,omitempty"`
	// World selects evasion scenarios for the run's world.
	World WorldConfig `json:"world,omitempty"`
}

func (r *CharacterizeRequest) normalize() error {
	r.ISPs = sortDedupe(r.ISPs)
	known := make(map[string]bool)
	for _, t := range world.CharacterizationTargets() {
		known[t.ISP] = true
	}
	for _, isp := range r.ISPs {
		if !known[isp] {
			return badRequestf("unknown characterization ISP %q", isp)
		}
	}
	return nil
}

// DiscoverRequest parameterizes POST /v1/discover.
type DiscoverRequest struct {
	// ISPs restricts the crawl targets (empty = all confirmed
	// deployments).
	ISPs []string `json:"isps,omitempty"`
	// Rounds and Budget cap each target's crawl (0 = discovery package
	// defaults).
	Rounds int `json:"rounds,omitempty"`
	Budget int `json:"budget,omitempty"`
	// World selects evasion scenarios for the run's world.
	World WorldConfig `json:"world,omitempty"`
}

func (r *DiscoverRequest) normalize() error {
	r.ISPs = sortDedupe(r.ISPs)
	known := make(map[string]bool)
	for _, t := range world.CharacterizationTargets() {
		known[t.ISP] = true
	}
	for _, isp := range r.ISPs {
		if !known[isp] {
			return badRequestf("unknown discovery ISP %q", isp)
		}
	}
	if r.Rounds < 0 {
		return badRequestf("rounds must be >= 0, got %d", r.Rounds)
	}
	if r.Budget < 0 {
		return badRequestf("budget must be >= 0, got %d", r.Budget)
	}
	return nil
}

// MechanismsRequest parameterizes POST /v1/mechanisms.
type MechanismsRequest struct {
	// ISPs restricts the survey to named roster ISPs (empty = the whole
	// mechanism roster).
	ISPs []string `json:"isps,omitempty"`
	// World selects evasion scenarios; normalize forces World.Mechanisms
	// on, since the survey is meaningless without the censoring roster.
	World WorldConfig `json:"world,omitempty"`
}

func (r *MechanismsRequest) normalize() error {
	r.ISPs = sortDedupe(r.ISPs)
	known := make(map[string]bool)
	for _, isp := range world.MechanismRosterISPs() {
		known[isp] = true
	}
	for _, isp := range r.ISPs {
		if !known[isp] {
			return badRequestf("unknown mechanism-roster ISP %q", isp)
		}
	}
	// The flag participates in the request key via worldHash, so two
	// clients that differ only in whether they spelled it out coalesce.
	r.World.Mechanisms = true
	return nil
}

func sortDedupe(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		s = strings.TrimSpace(s)
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil
	}
	return out
}

// worldConfigOf extracts a request's evasion overlay (zero value when
// the request type carries none).
func worldConfigOf(req any) WorldConfig {
	switch r := req.(type) {
	case *IdentifyRequest:
		return r.World
	case *ConfirmRequest:
		return r.World
	case *CharacterizeRequest:
		return r.World
	case *DiscoverRequest:
		return r.World
	case *MechanismsRequest:
		return r.World
	}
	return WorldConfig{}
}

// worldHash is the fingerprint of the effective world.Options a request
// runs under: the request's evasion overlay applied to the server's base
// options. It is the same hash the snapshot store records, so a cached
// body and a persisted snapshot of the same run share a config identity.
func (s *Server) worldHash(req any) string {
	return store.ConfigHash(worldConfigOf(req).options(s.opts.World))
}

// requestKey derives the cache/singleflight key from a normalized
// request: kind, the effective world-config hash, and the request's
// deterministic JSON encoding. Hashing the *effective* options (not just
// the request overlay) keeps results from one base-world configuration
// from being served after the server is restarted onto another — two
// servers with different seeds or evasion baselines never share keys.
func (s *Server) requestKey(kind string, req any) string {
	b, err := json.Marshal(req)
	if err != nil {
		// Request types marshal by construction; a failure here is a
		// programming error, and an unshareable key is the safe fallback.
		return kind + ":unmarshalable"
	}
	return kind + ":" + s.worldHash(req) + ":" + string(b)
}

// ---- dispatch: cache -> singleflight -> pipeline ----

// cachedRun executes kind once per canonical key: concurrent identical
// requests share one pipeline run via singleflight, and completed
// results live in the TTL cache.
func (s *Server) cachedRun(ctx context.Context, kind, key string, req any) ([]byte, error) {
	val, err, shared := s.flight.do(key, func() ([]byte, error) {
		if val, ok := s.cache.get(key); ok {
			s.metrics.cacheHit()
			return val, nil
		}
		s.metrics.cacheMiss()
		val, err := s.execute(ctx, kind, req)
		if err != nil {
			return nil, err
		}
		s.cache.put(key, val)
		return val, nil
	})
	if shared {
		s.metrics.cacheShared()
	}
	return val, err
}

// execute runs one pipeline and marshals its document.
func (s *Server) execute(ctx context.Context, kind string, req any) ([]byte, error) {
	if s.execHook != nil {
		if err := s.execHook(ctx, kind); err != nil {
			return nil, err
		}
	}
	s.metrics.run(kind)
	var doc any
	var err error
	if s.clusterRt != nil {
		if creq, ok := s.clusterRequest(kind, req); ok {
			doc, err = s.clusterRt.coord.Run(ctx, creq)
			if err != nil {
				return nil, err
			}
			if docDegraded(doc) {
				s.metrics.runDegraded(kind)
			}
			return json.Marshal(doc)
		}
	}
	switch kind {
	case KindIdentify:
		doc, err = s.runIdentify(ctx, req.(*IdentifyRequest))
	case KindConfirm:
		doc, err = s.runConfirm(ctx, req.(*ConfirmRequest))
	case KindCharacterize:
		doc, err = s.runCharacterize(ctx, req.(*CharacterizeRequest))
	case KindDiscover:
		doc, err = s.runDiscover(ctx, req.(*DiscoverRequest))
	case KindMechanisms:
		doc, err = s.runMechanisms(ctx, req.(*MechanismsRequest))
	default:
		err = badRequestf("unknown kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	if docDegraded(doc) {
		s.metrics.runDegraded(kind)
	}
	return json.Marshal(doc)
}

// docDegraded reports whether a pipeline document carries the Degraded
// marker — the run completed on partial results.
func docDegraded(doc any) bool {
	switch d := doc.(type) {
	case report.IdentifyDoc:
		return d.Degraded
	case report.Table3Doc:
		return d.Degraded
	case report.Table4Doc:
		return d.Degraded
	case report.DiscoveryDoc:
		return d.Degraded
	case report.MechanismsDoc:
		return d.Degraded
	default:
		return false
	}
}

// runIdentify executes the §3 pipeline. Default-world requests reuse the
// base world and its once-scanned banner index — the cached hot path;
// evasion-configured requests scan a dedicated world.
func (s *Server) runIdentify(ctx context.Context, req *IdentifyRequest) (report.IdentifyDoc, error) {
	w := s.base
	var index *scanner.Index
	if req.World.zero() {
		var err error
		if index, err = s.sharedIndex(ctx); err != nil {
			return report.IdentifyDoc{}, err
		}
	} else {
		fresh, err := world.Build(req.World.options(s.opts.World), s.engOpts...)
		if err != nil {
			return report.IdentifyDoc{}, err
		}
		defer fresh.Close()
		w = fresh
	}
	p, err := w.IdentifyPipeline(ctx, index)
	if err != nil {
		return report.IdentifyDoc{}, err
	}
	if len(req.Products) > 0 {
		all := fingerprint.ShodanKeywords()
		kw := make(map[string][]string, len(req.Products))
		for _, prod := range req.Products {
			kw[prod] = all[prod]
		}
		p.Keywords = kw
	}
	if len(req.Countries) > 0 {
		p.Countries = req.Countries
	}
	rep, err := p.Run(ctx)
	if err != nil {
		return report.IdentifyDoc{}, err
	}
	return report.IdentifyJSON(rep), nil
}

// sharedIndex scans the base world's address space once and reuses the
// banner index for every subsequent default-world identification.
func (s *Server) sharedIndex(ctx context.Context) (*scanner.Index, error) {
	s.baseMu.Lock()
	defer s.baseMu.Unlock()
	if s.baseIdx == nil {
		idx, err := s.base.Scanner().ScanNetwork(ctx)
		if err != nil {
			return nil, fmt.Errorf("server: base scan: %w", err)
		}
		s.baseIdx = idx
	}
	return s.baseIdx, nil
}

// runConfirm executes §4 campaigns, always on a fresh world: a campaign
// advances the virtual clock and feeds vendor submission queues, so the
// timeline is single-use.
func (s *Server) runConfirm(ctx context.Context, req *ConfirmRequest) (report.Table3Doc, error) {
	w, err := world.Build(req.World.options(s.opts.World), s.engOpts...)
	if err != nil {
		return report.Table3Doc{}, err
	}
	defer w.Close()
	if req.Campaign == "" {
		outcomes, err := w.RunTable3(ctx)
		if err != nil {
			return report.Table3Doc{}, err
		}
		return report.Table3JSON(outcomes), nil
	}
	outcome, err := w.RunPlan(ctx, req.Campaign)
	if err != nil {
		if errors.Is(err, world.ErrUnknownPlan) {
			return report.Table3Doc{}, badRequestf("unknown campaign %q", req.Campaign)
		}
		return report.Table3Doc{}, err
	}
	return report.Table3JSON([]*confirm.Outcome{outcome}), nil
}

// runCharacterize executes §5 on a fresh world positioned the same way
// fmcharacterize positions it (clock at +8h, Yemen license window
// active), so results match the CLI and stay deterministic per request.
func (s *Server) runCharacterize(ctx context.Context, req *CharacterizeRequest) (report.Table4Doc, error) {
	w, err := world.Build(req.World.options(s.opts.World), s.engOpts...)
	if err != nil {
		return report.Table4Doc{}, err
	}
	defer w.Close()
	w.Clock.Advance(8 * time.Hour)
	reports, err := w.RunCharacterizationFor(ctx, req.ISPs)
	if err != nil {
		return report.Table4Doc{}, err
	}
	return report.Table4JSON(reports), nil
}

// runDiscover executes the discovery crawl on a fresh world positioned
// like characterization (clock at +8h, Yemen license window active), so
// results match fmdiscover and stay deterministic per request.
func (s *Server) runDiscover(ctx context.Context, req *DiscoverRequest) (report.DiscoveryDoc, error) {
	w, err := world.Build(req.World.options(s.opts.World), s.engOpts...)
	if err != nil {
		return report.DiscoveryDoc{}, err
	}
	defer w.Close()
	w.Clock.Advance(8 * time.Hour)
	targets, err := w.RunDiscovery(ctx, world.DiscoveryOptions{
		ISPs:   req.ISPs,
		Rounds: req.Rounds,
		Budget: req.Budget,
	})
	if err != nil {
		return report.DiscoveryDoc{}, err
	}
	return discoveryDoc(req.Rounds, req.Budget, targets), nil
}

// discoveryDoc builds the discovery document from world targets.
func discoveryDoc(rounds, budget int, targets []world.TargetDiscovery) report.DiscoveryDoc {
	rts := make([]report.DiscoveryTarget, 0, len(targets))
	for _, t := range targets {
		rts = append(rts, report.DiscoveryTarget{Country: t.Country, ISP: t.ISP, ASN: t.ASN, Report: t.Report})
	}
	return report.DiscoveryJSON(rounds, budget, rts, world.DiscoveredList(targets))
}

// runMechanisms executes the mechanism survey on a fresh world with the
// censoring-ISP roster enabled (normalize guarantees World.Mechanisms),
// probing each roster ISP's blocked domains over DNS, raw-TCP, and TLS.
func (s *Server) runMechanisms(ctx context.Context, req *MechanismsRequest) (report.MechanismsDoc, error) {
	w, err := world.Build(req.World.options(s.opts.World), s.engOpts...)
	if err != nil {
		return report.MechanismsDoc{}, err
	}
	defer w.Close()
	targets, err := w.RunMechanismSurveyFor(ctx, req.ISPs)
	if err != nil {
		return report.MechanismsDoc{}, err
	}
	return mechanismsDoc(targets), nil
}

// mechanismsDoc builds the mechanism document from world targets.
func mechanismsDoc(targets []world.MechanismSurveyTarget) report.MechanismsDoc {
	rts := make([]report.MechanismTarget, 0, len(targets))
	for _, t := range targets {
		rts = append(rts, report.MechanismTarget{Country: t.Country, ISP: t.ISP, ASN: t.ASN, Results: t.Results})
	}
	return report.MechanismsJSON(rts)
}

// ---- handlers ----

func (s *Server) handleIdentify(w http.ResponseWriter, r *http.Request) {
	var req IdentifyRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.normalize(); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.dispatch(w, r, KindIdentify, &req)
}

func (s *Server) handleConfirm(w http.ResponseWriter, r *http.Request) {
	var req ConfirmRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.normalize(); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.validateCampaign(req.Campaign); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.dispatch(w, r, KindConfirm, &req)
}

// validateCampaign rejects unknown campaign keys against the base
// world's plan list, before any fresh world is built for the run.
func (s *Server) validateCampaign(key string) error {
	if key == "" {
		return nil
	}
	for _, k := range s.base.PlanKeys() {
		if k == key {
			return nil
		}
	}
	return badRequestf("unknown campaign %q", key)
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req CharacterizeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.normalize(); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.dispatch(w, r, KindCharacterize, &req)
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.normalize(); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.dispatch(w, r, KindDiscover, &req)
}

func (s *Server) handleMechanisms(w http.ResponseWriter, r *http.Request) {
	var req MechanismsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.normalize(); err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.dispatch(w, r, KindMechanisms, &req)
}

// dispatch implements the pipeline endpoints' contract: synchronous when
// the result is cached, otherwise enqueued as a background job (202 +
// Location) — unless ?wait=1, which blocks through the singleflight for
// the result.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, kind string, req any) {
	key := s.requestKey(kind, req)
	if val, ok := s.cache.get(key); ok {
		s.metrics.cacheHit()
		writeRawJSON(w, http.StatusOK, s.maybeAttachStats(r, val))
		return
	}
	if wantsWait(r) {
		val, err := s.cachedRun(r.Context(), kind, key, req)
		if err != nil {
			jsonError(w, errorStatus(err), err.Error())
			return
		}
		writeRawJSON(w, http.StatusOK, s.maybeAttachStats(r, val))
		return
	}
	j, existing, err := s.jobs.submit(kind, key, req)
	if err != nil {
		jsonError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	status := http.StatusAccepted
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, s.jobs.doc(j, false))
}

func wantsWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// jobSubmitRequest is the POST /v1/jobs body.
type jobSubmitRequest struct {
	Kind    string          `json:"kind"`
	Request json.RawMessage `json:"request,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var body jobSubmitRequest
	if !s.decodeBody(w, r, &body) {
		return
	}
	req, err := s.parseKindRequest(body.Kind, body.Request)
	if err != nil {
		jsonError(w, errorStatus(err), err.Error())
		return
	}
	key := s.requestKey(body.Kind, req)
	j, existing, err := s.jobs.submit(body.Kind, key, req)
	if err != nil {
		jsonError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	status := http.StatusCreated
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, s.jobs.doc(j, false))
}

// parseKindRequest decodes and normalizes a kind-specific request body.
func (s *Server) parseKindRequest(kind string, raw json.RawMessage) (any, error) {
	unmarshal := func(v interface{ normalize() error }) (any, error) {
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, v); err != nil {
				return nil, badRequestf("bad %s request: %v", kind, err)
			}
		}
		if err := v.normalize(); err != nil {
			return nil, err
		}
		return v, nil
	}
	switch kind {
	case KindIdentify:
		return unmarshal(&IdentifyRequest{})
	case KindConfirm:
		req, err := unmarshal(&ConfirmRequest{})
		if err != nil {
			return nil, err
		}
		if err := s.validateCampaign(req.(*ConfirmRequest).Campaign); err != nil {
			return nil, err
		}
		return req, nil
	case KindCharacterize:
		return unmarshal(&CharacterizeRequest{})
	case KindDiscover:
		return unmarshal(&DiscoverRequest{})
	case KindMechanisms:
		return unmarshal(&MechanismsRequest{})
	default:
		return nil, badRequestf("unknown job kind %q", kind)
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	docs := make([]JobDoc, 0, len(jobs))
	for _, j := range jobs {
		docs = append(docs, s.jobs.doc(j, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.doc(j, true))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.jobs.cancelJob(j) {
		jsonError(w, http.StatusConflict, "job already finished")
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.doc(j, false))
}

// handleReport serves synchronous JSON renderings of the paper
// artifacts, through the same cache/singleflight as the pipeline
// endpoints.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	switch kind {
	case "table1":
		writeJSON(w, http.StatusOK, report.Table1JSON())
	case "table3":
		s.serveCached(w, r, KindConfirm, &ConfirmRequest{}, nil)
	case "table4":
		s.serveCached(w, r, KindCharacterize, &CharacterizeRequest{}, nil)
	case "mechanisms":
		s.serveCached(w, r, KindMechanisms, &MechanismsRequest{World: WorldConfig{Mechanisms: true}}, nil)
	case "figure1":
		s.serveCached(w, r, KindIdentify, &IdentifyRequest{}, nil)
	case "installations":
		s.serveCached(w, r, KindIdentify, &IdentifyRequest{}, func(val []byte) (any, error) {
			var doc report.IdentifyDoc
			if err := json.Unmarshal(val, &doc); err != nil {
				return nil, err
			}
			return map[string]any{"installations": doc.Installations}, nil
		})
	default:
		jsonError(w, http.StatusNotFound, fmt.Sprintf("unknown report %q", kind))
	}
}

// serveCached runs a default-parameter pipeline through the cache and
// optionally reshapes the cached document before responding.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, kind string, req any, reshape func([]byte) (any, error)) {
	key := s.requestKey(kind, req)
	if val, ok := s.cache.get(key); ok {
		s.metrics.cacheHit()
		s.respondMaybeReshaped(w, r, val, reshape)
		return
	}
	val, err := s.cachedRun(r.Context(), kind, key, req)
	if err != nil {
		jsonError(w, errorStatus(err), err.Error())
		return
	}
	s.respondMaybeReshaped(w, r, val, reshape)
}

func (s *Server) respondMaybeReshaped(w http.ResponseWriter, r *http.Request, val []byte, reshape func([]byte) (any, error)) {
	if reshape == nil {
		writeRawJSON(w, http.StatusOK, s.maybeAttachStats(r, val))
		return
	}
	doc, err := reshape(val)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// wantsStats reports the ?stats=1 opt-in: include the engine's current
// per-stage Stats snapshot in the response's optional "stats" field.
func wantsStats(r *http.Request) bool {
	switch r.URL.Query().Get("stats") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// maybeAttachStats injects the engine Stats snapshot into a cached JSON
// document when the request opted in. The injection happens after the
// cache, so cached bytes stay stable and stats reflect serving time.
func (s *Server) maybeAttachStats(r *http.Request, val []byte) []byte {
	if !wantsStats(r) {
		return val
	}
	var doc map[string]any
	if err := json.Unmarshal(val, &doc); err != nil {
		return val
	}
	snap := s.metrics.engineStats.Snapshot()
	sort.Slice(snap.Stages, func(i, j int) bool { return snap.Stages[i].Stage < snap.Stages[j].Stage })
	doc["stats"] = snap
	b, err := json.Marshal(doc)
	if err != nil {
		return val
	}
	return b
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        version.String(),
		"uptime_seconds": s.opts.now().Sub(s.metrics.startedAt).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := s.metrics.snapshot(s.opts.now(), s.cache.len(), s.jobs.counts(), s.snaps.Count())
	if s.mon != nil {
		c := s.mon.Counters()
		doc.Monitor = &c
	}
	if s.clusterRt != nil {
		status := s.clusterRt.coord.Status()
		doc.Cluster = &ClusterMetricsDoc{
			Role:         s.clusterRt.role,
			Workers:      len(status.Workers),
			Counters:     status.Counters,
			AppendErrors: s.metrics.clusterAppendErrorCount(),
		}
	}
	if s.follower != nil {
		c := s.follower.Counters()
		doc.Replica = &c
	}
	delivered, dropped := s.broker.Fanout()
	doc.Watch = WatchDoc{
		Subscribers: s.broker.Subscribers(),
		Delivered:   delivered,
		Dropped:     dropped,
		LastEventID: s.broker.LastID(),
	}
	writeJSON(w, http.StatusOK, doc)
}

// ---- plumbing ----

// decodeBody reads and unmarshals a JSON request body into v. An empty
// body leaves v at its zero value. On failure it writes the error
// response and returns false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			jsonError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		jsonError(w, http.StatusBadRequest, err.Error())
		return false
	}
	if len(body) == 0 {
		return true
	}
	if err := json.Unmarshal(body, v); err != nil {
		jsonError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

// statusError carries an HTTP status through the runner layers.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &statusError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorStatus maps a runner error to its HTTP status.
func errorStatus(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeRawJSON(w, status, b)
}

func writeRawJSON(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b) //nolint:errcheck // best-effort response body
	if len(b) == 0 || b[len(b)-1] != '\n' {
		io.WriteString(w, "\n") //nolint:errcheck
	}
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
