package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"filtermap/internal/report"
)

// newTestServer builds a Server plus an httptest front end and tears
// both down with the test.
func newTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, ts
}

// doJSON posts body (marshaled unless nil) and decodes the response into
// out (unless nil), returning the raw response.
func doJSON(t testing.TB, method, url string, body, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s %s (%d): %v\n%s", method, url, resp.StatusCode, err, raw)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp
}

func wantStatus(t testing.TB, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, want, body)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var doc map[string]any
	resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &doc)
	wantStatus(t, resp, http.StatusOK)
	if doc["status"] != "ok" {
		t.Fatalf("healthz status = %v, want ok", doc["status"])
	}
}

func TestIdentifyEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// First synchronous call runs the pipeline.
	var doc report.IdentifyDoc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/identify?wait=1", nil, &doc)
	wantStatus(t, resp, http.StatusOK)
	if doc.ValidatedCount == 0 || len(doc.Installations) == 0 {
		t.Fatalf("identify found nothing: %+v", doc)
	}
	if len(doc.ProductCountries) == 0 {
		t.Fatal("identify returned no product->countries map")
	}

	// Second call (no wait) must answer from the cache, synchronously.
	var cached report.IdentifyDoc
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/identify", nil, &cached)
	wantStatus(t, resp, http.StatusOK)
	if cached.ValidatedCount != doc.ValidatedCount {
		t.Fatalf("cached validated = %d, want %d", cached.ValidatedCount, doc.ValidatedCount)
	}

	// A parameterized request is a different cache key: it gets enqueued.
	var jd JobDoc
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/identify",
		IdentifyRequest{Countries: []string{"YE"}}, &jd)
	wantStatus(t, resp, http.StatusAccepted)
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+jd.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, jd.ID)
	}
	waitForJob(t, ts, jd.ID)

	// Reports ride the same cache: figure1 is the default identify doc.
	var fig report.IdentifyDoc
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/reports/figure1", nil, &fig)
	wantStatus(t, resp, http.StatusOK)
	if fig.ValidatedCount != doc.ValidatedCount {
		t.Fatalf("figure1 validated = %d, want %d", fig.ValidatedCount, doc.ValidatedCount)
	}
	var inst struct {
		Installations []report.InstallationDoc `json:"installations"`
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/reports/installations", nil, &inst)
	wantStatus(t, resp, http.StatusOK)
	if len(inst.Installations) != len(doc.Installations) {
		t.Fatalf("installations = %d, want %d", len(inst.Installations), len(doc.Installations))
	}

	// Metrics must show exactly one identify pipeline run so far for the
	// default request, plus the parameterized job's run.
	var md MetricsDoc
	resp = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &md)
	wantStatus(t, resp, http.StatusOK)
	if md.Runs[KindIdentify] != 2 {
		t.Fatalf("identify runs = %d, want 2 (default + YE-only)", md.Runs[KindIdentify])
	}
	if md.Cache.Hits == 0 {
		t.Fatalf("cache hits = 0, want > 0: %+v", md.Cache)
	}
	if len(md.Engine.Stages) == 0 {
		t.Fatal("metrics carry no engine stage stats")
	}
}

func TestIdentifyRejectsUnknownProduct(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/identify?wait=1",
		IdentifyRequest{Products: []string{"NotAProduct"}}, nil)
	wantStatus(t, resp, http.StatusBadRequest)
}

func TestConfirmSingleCampaign(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var doc report.Table3Doc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/confirm?wait=1",
		ConfirmRequest{Campaign: "smartfilter-saudi-bayanat"}, &doc)
	wantStatus(t, resp, http.StatusOK)
	if len(doc.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(doc.Rows))
	}
	row := doc.Rows[0]
	if row.ISP == "" || row.Country != "SA" {
		t.Fatalf("unexpected row: %+v", row)
	}
	if !row.Confirmed {
		t.Fatalf("campaign not confirmed: %+v", row)
	}

	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/confirm?wait=1",
		ConfirmRequest{Campaign: "no-such-campaign"}, nil)
	wantStatus(t, resp, http.StatusBadRequest)
}

func TestCharacterizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var doc report.Table4Doc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/characterize?wait=1",
		CharacterizeRequest{ISPs: []string{"YemenNet"}}, &doc)
	wantStatus(t, resp, http.StatusOK)
	if len(doc.Reports) != 1 || doc.Reports[0].Country != "YE" {
		t.Fatalf("unexpected reports: %+v", doc.Reports)
	}
	if len(doc.Columns) == 0 {
		t.Fatal("characterize doc has no columns")
	}

	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/characterize?wait=1",
		CharacterizeRequest{ISPs: []string{"NoSuchISP"}}, nil)
	wantStatus(t, resp, http.StatusBadRequest)
}

func TestMechanismsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var doc report.MechanismsDoc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/mechanisms?wait=1",
		MechanismsRequest{ISPs: []string{"Nayatel"}}, &doc)
	wantStatus(t, resp, http.StatusOK)
	if len(doc.Mechanisms) != 1 || doc.Mechanisms[0].ISP != "Nayatel" {
		t.Fatalf("unexpected mechanisms doc: %+v", doc.Mechanisms)
	}
	isp := doc.Mechanisms[0]
	if isp.Censored == 0 || len(isp.Findings) == 0 {
		t.Fatalf("Nayatel survey found nothing: %+v", isp)
	}
	for _, f := range isp.Findings {
		if f.Mechanism == "" || f.Product == "" {
			t.Fatalf("finding missing mechanism or product: %+v", f)
		}
	}
	if doc.Degraded {
		t.Fatal("mechanism survey reported degraded on a healthy world")
	}

	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/mechanisms?wait=1",
		MechanismsRequest{ISPs: []string{"NoSuchISP"}}, nil)
	wantStatus(t, resp, http.StatusBadRequest)

	// normalize forces World.Mechanisms on, so a request that spells the
	// flag out coalesces onto the same cache key as one that omits it.
	a := &MechanismsRequest{ISPs: []string{"Nayatel"}}
	b := &MechanismsRequest{ISPs: []string{"Nayatel"}, World: WorldConfig{Mechanisms: true}}
	if err := a.normalize(); err != nil {
		t.Fatalf("normalize a: %v", err)
	}
	if err := b.normalize(); err != nil {
		t.Fatalf("normalize b: %v", err)
	}
	if ka, kb := srv.requestKey(KindMechanisms, a), srv.requestKey(KindMechanisms, b); ka != kb {
		t.Fatalf("request keys differ:\n  %s\n  %s", ka, kb)
	}
}

func TestWorldConfigMechanismsOmittedWhenUnset(t *testing.T) {
	// Mechanism-free request keys must be byte-identical to their
	// pre-mechanism form so cached results and stored snapshot configs
	// survive the upgrade.
	b, err := json.Marshal(WorldConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "mechanisms") {
		t.Fatalf("zero WorldConfig leaks the mechanisms key: %s", b)
	}
	srv, _ := newTestServer(t, Options{})
	plain := srv.requestKey(KindIdentify, &IdentifyRequest{})
	withMech := srv.requestKey(KindIdentify, &IdentifyRequest{World: WorldConfig{Mechanisms: true}})
	if plain == withMech {
		t.Fatal("enabling World.Mechanisms must change the request key")
	}
}

func TestReportsMechanisms(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var doc report.MechanismsDoc
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/reports/mechanisms", nil, &doc)
	wantStatus(t, resp, http.StatusOK)
	if len(doc.Mechanisms) < 9 {
		t.Fatalf("reports/mechanisms surveyed %d ISPs, want the full roster (>= 9)", len(doc.Mechanisms))
	}
}

func TestReportsTable1AndUnknownKind(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var doc report.Table1Doc
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/reports/table1", nil, &doc)
	wantStatus(t, resp, http.StatusOK)
	if len(doc.Rows) == 0 {
		t.Fatal("table1 has no rows")
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/reports/nope", nil, nil)
	wantStatus(t, resp, http.StatusNotFound)
}

// waitForJob polls until the job leaves the queue, failing the test if
// it does not finish successfully.
func waitForJob(t testing.TB, ts *httptest.Server, id string) JobDoc {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var jd JobDoc
		resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &jd)
		wantStatus(t, resp, http.StatusOK)
		switch jd.State {
		case JobDone:
			return jd
		case JobFailed:
			t.Fatalf("job %s failed: %s", id, jd.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobDoc{}
}

func TestJobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	var jd JobDoc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		jobSubmitRequest{Kind: KindIdentify}, &jd)
	wantStatus(t, resp, http.StatusCreated)
	if jd.Kind != KindIdentify {
		t.Fatalf("job kind = %q", jd.Kind)
	}

	// An identical submission while active dedupes onto the same job.
	var dup JobDoc
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		jobSubmitRequest{Kind: KindIdentify}, &dup)
	if resp.StatusCode == http.StatusOK && dup.ID != jd.ID {
		t.Fatalf("dedupe returned different job %s != %s", dup.ID, jd.ID)
	}

	done := waitForJob(t, ts, jd.ID)
	if len(done.Result) == 0 {
		t.Fatal("finished job carries no result")
	}
	var doc report.IdentifyDoc
	if err := json.Unmarshal(done.Result, &doc); err != nil {
		t.Fatalf("job result is not an identify doc: %v", err)
	}

	var list struct {
		Jobs []JobDoc `json:"jobs"`
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &list)
	wantStatus(t, resp, http.StatusOK)
	if len(list.Jobs) == 0 {
		t.Fatal("job list is empty")
	}

	resp = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999", nil, nil)
	wantStatus(t, resp, http.StatusNotFound)

	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		jobSubmitRequest{Kind: "frobnicate"}, nil)
	wantStatus(t, resp, http.StatusBadRequest)
}

func TestJobCancel(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	release := make(chan struct{})
	srv.execHook = func(ctx context.Context, kind string) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-release:
			return nil
		}
	}
	defer close(release)

	var jd JobDoc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		jobSubmitRequest{Kind: KindCharacterize}, &jd)
	wantStatus(t, resp, http.StatusCreated)

	// Wait until the worker picks it up so cancellation exercises the
	// running path.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var cur JobDoc
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+jd.ID, nil, &cur)
		if cur.State == JobRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+jd.ID, nil, nil)
	wantStatus(t, resp, http.StatusOK)

	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var cur JobDoc
		doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+jd.ID, nil, &cur)
		if cur.State == JobFailed {
			if !strings.Contains(cur.Error, "canceled") {
				t.Fatalf("canceled job error = %q", cur.Error)
			}
			// Canceling a finished job conflicts.
			resp = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+jd.ID, nil, nil)
			wantStatus(t, resp, http.StatusConflict)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached failed state after cancel")
}

// TestSingleflightConcurrentIdentify is the acceptance check: 100
// concurrent identical /v1/identify requests trigger exactly one
// pipeline run, with the dedup visible in /metrics. Run with -race.
func TestSingleflightConcurrentIdentify(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const n = 100
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/identify?wait=1", "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var doc report.IdentifyDoc
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if doc.ValidatedCount == 0 {
				errs <- fmt.Errorf("empty identify doc")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var md MetricsDoc
	resp := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &md)
	wantStatus(t, resp, http.StatusOK)
	if md.Runs[KindIdentify] != 1 {
		t.Fatalf("identify runs = %d, want exactly 1", md.Runs[KindIdentify])
	}
	if md.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", md.Cache.Misses)
	}
	if md.Cache.Hits+md.Cache.Coalesced != n-1 {
		t.Fatalf("hits(%d) + coalesced(%d) = %d, want %d",
			md.Cache.Hits, md.Cache.Coalesced, md.Cache.Hits+md.Cache.Coalesced, n-1)
	}
}

// TestGracefulShutdownDrains proves Shutdown waits for in-flight jobs:
// a running job blocks, Shutdown blocks behind it, and once the job is
// released both complete; intake rejects new work meanwhile.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var startOnce sync.Once
	srv.execHook = func(ctx context.Context, kind string) error {
		startOnce.Do(func() { close(started) })
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-release:
			return nil
		}
	}

	var jd JobDoc
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		jobSubmitRequest{Kind: KindCharacterize}, &jd)
	wantStatus(t, resp, http.StatusCreated)
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must not return while the job is still executing.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight job finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Intake is closed during drain.
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		jobSubmitRequest{Kind: KindIdentify}, nil)
	wantStatus(t, resp, http.StatusServiceUnavailable)

	close(release)
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Shutdown did not return after the job was released")
	}

	j, ok := srv.jobs.get(jd.ID)
	if !ok {
		t.Fatalf("job %s vanished", jd.ID)
	}
	srv.jobs.mu.Lock()
	state := j.state
	srv.jobs.mu.Unlock()
	if state != JobDone {
		t.Fatalf("drained job state = %s, want done", state)
	}
}

func TestRateLimit(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	_, ts := newTestServer(t, Options{RatePerSec: 1, RateBurst: 2, now: clk.Now})

	for i := 0; i < 2; i++ {
		resp := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
		wantStatus(t, resp, http.StatusOK)
	}
	resp := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	wantStatus(t, resp, http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// healthz is exempt even when the bucket is dry.
	resp = doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	wantStatus(t, resp, http.StatusOK)

	// Tokens refill with time.
	clk.Advance(2 * time.Second)
	resp = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	wantStatus(t, resp, http.StatusOK)
}

func TestRequestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRequestBytes: 64})
	big := bytes.Repeat([]byte("x"), 1024)
	body := []byte(`{"countries":["` + string(big) + `"]}`)
	resp, err := http.Post(ts.URL+"/v1/identify?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestCachedIdentifyIsFaster is the cache-speedup acceptance check: a
// cached /v1/identify answer must be at least 10x faster than the
// uncached pipeline run.
func TestCachedIdentifyIsFaster(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	get := func() time.Duration {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/identify?wait=1", "application/json", nil)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		return time.Since(start)
	}

	uncached := get()
	// Take the fastest of several cached rounds to keep scheduler noise
	// out of the comparison.
	cached := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		if d := get(); d < cached {
			cached = d
		}
	}
	if cached*10 > uncached {
		t.Fatalf("cached path %v is not 10x faster than uncached %v", cached, uncached)
	}
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// BenchmarkServeCachedIdentify measures the cached hot path end to end
// through the HTTP stack (prime once, then hit the result cache).
func BenchmarkServeCachedIdentify(b *testing.B) {
	srv, err := New(Options{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(srv)
	defer ts.Close()

	prime, err := http.Post(ts.URL+"/v1/identify?wait=1", "application/json", nil)
	if err != nil {
		b.Fatalf("prime: %v", err)
	}
	io.Copy(io.Discard, prime.Body) //nolint:errcheck
	prime.Body.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/identify", "application/json", nil)
		if err != nil {
			b.Fatalf("post: %v", err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status = %d", resp.StatusCode)
		}
	}
}
