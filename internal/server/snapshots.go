package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"filtermap/internal/longitudinal"
	"filtermap/internal/monitor"
	"filtermap/internal/store"
)

// This file is the longitudinal HTTP surface: POST /v1/snapshots runs a
// pipeline and persists its document in the snapshot store, GET
// /v1/snapshots[/{id}] reads the log back, and GET /v1/diff compares two
// stored snapshots through the longitudinal engine. Pipeline execution
// reuses the cache/singleflight path, diff results reuse the TTL result
// cache (keyed by content IDs, so a changed world config — hence a new
// snapshot ID — can never resurface a stale diff).

// snapshotRecordRequest is the POST /v1/snapshots body.
type snapshotRecordRequest struct {
	// Kind selects the pipeline: "identify", "characterize", "discover"
	// or "mechanisms".
	Kind string `json:"kind"`
	// Note is a free-form annotation stored with the snapshot.
	Note string `json:"note,omitempty"`
	// Request carries the kind's pipeline request (same schema as the
	// POST /v1/{kind} body).
	Request json.RawMessage `json:"request,omitempty"`
}

// storeKindFor maps a pipeline kind to the snapshot kind its document is
// stored under.
func storeKindFor(kind string) (string, error) {
	switch kind {
	case KindIdentify:
		return longitudinal.KindIdentify, nil
	case KindCharacterize:
		return longitudinal.KindTable4, nil
	case KindDiscover:
		return longitudinal.KindDiscovery, nil
	case KindMechanisms:
		return longitudinal.KindMechanisms, nil
	case KindConfirm:
		return "", badRequestf("confirmation campaigns are single-use timelines; snapshot %q or %q instead", KindIdentify, KindCharacterize)
	default:
		return "", badRequestf("unknown snapshot kind %q", kind)
	}
}

// pipelineKindFor is storeKindFor's inverse: the pipeline kind whose
// cached reports a snapshot of the given store kind supersedes.
func pipelineKindFor(storeKind string) (string, bool) {
	switch storeKind {
	case longitudinal.KindIdentify:
		return KindIdentify, true
	case longitudinal.KindTable4:
		return KindCharacterize, true
	case longitudinal.KindDiscovery:
		return KindDiscover, true
	case longitudinal.KindMechanisms:
		return KindMechanisms, true
	default:
		return "", false
	}
}

// handleSnapshotRecord runs the requested pipeline (through the result
// cache) and appends its document to the snapshot store, keyed by the
// base world's virtual time and the effective world-config hash. Identical
// consecutive content dedupes: the existing record is returned with 200
// instead of 201.
func (s *Server) handleSnapshotRecord(w http.ResponseWriter, r *http.Request) {
	var body snapshotRecordRequest
	if !s.decodeBody(w, r, &body) {
		return
	}
	storeKind, err := storeKindFor(body.Kind)
	if err != nil {
		jsonError(w, errorStatus(err), err.Error())
		return
	}
	req, err := s.parseKindRequest(body.Kind, body.Request)
	if err != nil {
		jsonError(w, errorStatus(err), err.Error())
		return
	}
	key := s.requestKey(body.Kind, req)
	val, err := s.cachedRun(r.Context(), body.Kind, key, req)
	if err != nil {
		jsonError(w, errorStatus(err), err.Error())
		return
	}
	meta, err := s.snaps.Append(store.Snapshot{
		Kind:   storeKind,
		At:     s.base.Clock.Now(),
		Config: s.worldHash(req),
		Note:   body.Note,
		Body:   val,
	})
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.snapshotRecorded(meta.Deduped)
	// The append's invalidation hook just dropped every cached report for
	// this (kind, config) — including the one whose bytes we appended.
	// That entry still matches the newest snapshot, so restore it: repeat
	// recordings stay cache hits instead of re-running the pipeline.
	s.cache.put(key, val)
	// Mirror the append onto the watch stream so subscribers see
	// API-recorded snapshots alongside monitor ticks.
	s.broker.Publish(monitor.Event{
		At: s.base.Clock.Now(), Type: monitor.EventSnapshot,
		Plan: "api", Kind: storeKind,
		Seq: meta.Seq, SnapshotID: meta.ID, Deduped: meta.Deduped,
		Note: body.Note,
	})
	status := http.StatusCreated
	if meta.Deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, meta)
}

func (s *Server) handleSnapshotList(w http.ResponseWriter, r *http.Request) {
	q := store.Query{Kind: r.URL.Query().Get("kind")}
	metas := s.snaps.List(q)
	if metas == nil {
		metas = []store.Meta{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshots": metas})
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	meta, body, err := s.snaps.Get(r.PathValue("id"))
	if err != nil {
		jsonError(w, storeErrorStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"meta": meta, "body": json.RawMessage(body)})
}

// handleDiff compares two stored snapshots: GET /v1/diff?from=&to= with
// any Get selector (seq, id prefix, "latest", "latest:<kind>") on either
// side. Results are cached by content ID.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	fromSel, toSel := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if fromSel == "" || toSel == "" {
		jsonError(w, http.StatusBadRequest, "from and to snapshot selectors required")
		return
	}
	fromMeta, fromBody, err := s.snaps.Get(fromSel)
	if err != nil {
		jsonError(w, storeErrorStatus(err), fmt.Sprintf("from: %v", err))
		return
	}
	toMeta, toBody, err := s.snaps.Get(toSel)
	if err != nil {
		jsonError(w, storeErrorStatus(err), fmt.Sprintf("to: %v", err))
		return
	}
	// Content IDs fully determine the diff (kind + config + body), so the
	// cache key needs nothing else.
	key := "diff:" + fromMeta.ID + ":" + toMeta.ID
	if val, ok := s.cache.get(key); ok {
		s.metrics.cacheHit()
		writeRawJSON(w, http.StatusOK, val)
		return
	}
	s.metrics.cacheMiss()
	d, err := s.diffEng.Diff(r.Context(),
		longitudinal.Input{Meta: fromMeta, Body: fromBody},
		longitudinal.Input{Meta: toMeta, Body: toBody},
	)
	if err != nil {
		jsonError(w, errorStatus(err), err.Error())
		return
	}
	val, err := json.Marshal(d)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cache.put(key, val)
	s.metrics.diffComputed()
	writeRawJSON(w, http.StatusOK, val)
}

// storeErrorStatus maps store lookup errors onto HTTP statuses.
func storeErrorStatus(err error) int {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, store.ErrAmbiguous):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
