package server

import (
	"net/http"
	"strconv"
	"time"

	"filtermap/internal/monitor"
)

// This file is the streaming surface over the monitor's event broker:
//
//	GET  /v1/watch         SSE stream of monitor events (Last-Event-ID
//	                       resume; ?poll=1 long-poll fallback)
//	GET  /v1/monitor       scheduler status
//	POST /v1/monitor/tick  advance the continuous-measurement loop
//
// The SSE contract: every event frame carries `id: <n>` with the
// broker's monotonic event ID. A client that reconnects with the
// standard Last-Event-ID header (or ?since=<n>) replays everything it
// missed from the broker's retained tail before going live — the resume
// semantics DESIGN.md §14 pins down.

// resumePoint extracts the client's resume position: the Last-Event-ID
// header (standard SSE reconnect) wins over the ?since query parameter.
func resumePoint(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("since")
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	since := resumePoint(r)
	if r.URL.Query().Get("poll") == "1" {
		s.watchPoll(w, r, since)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		// The transport cannot stream: degrade to the long-poll shape.
		s.watchPoll(w, r, since)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("retry: 1000\n\n")) //nolint:errcheck // client gone = ctx done
	fl.Flush()

	// Subscribe atomically replays the missed tail and registers for
	// live events, so nothing published in between is lost or doubled.
	replay, ch, cancel := s.broker.Subscribe(since, 256)
	defer cancel()
	for i := range replay {
		if !writeSSE(w, &replay[i]) {
			return
		}
	}
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open {
				// Dropped for falling behind; the client reconnects with
				// Last-Event-ID and replays.
				return
			}
			if !writeSSE(w, &e) {
				return
			}
			fl.Flush()
		case <-keepalive.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one event frame; false means the client went away.
func writeSSE(w http.ResponseWriter, e *monitor.Event) bool {
	frame, err := e.MarshalSSE()
	if err != nil {
		return false
	}
	_, err = w.Write(frame)
	return err == nil
}

// watchPollDoc is the long-poll response body.
type watchPollDoc struct {
	LastEventID uint64          `json:"last_event_id"`
	Events      []monitor.Event `json:"events"`
}

// watchPoll is the long-poll fallback: return events after the resume
// point immediately when any exist; otherwise, with ?timeout_ms=N, wait
// up to that long for the next event before returning an empty batch.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, since uint64) {
	events := s.broker.Since(since)
	if len(events) == 0 {
		if ms, err := strconv.Atoi(r.URL.Query().Get("timeout_ms")); err == nil && ms > 0 {
			if ms > 60_000 {
				ms = 60_000
			}
			replay, ch, cancel := s.broker.Subscribe(since, 64)
			defer cancel()
			events = replay
			if len(events) == 0 {
				timer := time.NewTimer(time.Duration(ms) * time.Millisecond)
				defer timer.Stop()
				select {
				case e, open := <-ch:
					if open {
						events = append(events, e)
						// Batch whatever else already arrived.
						for {
							select {
							case e, open := <-ch:
								if open {
									events = append(events, e)
									continue
								}
							default:
							}
							break
						}
					}
				case <-timer.C:
				case <-r.Context().Done():
				}
			}
		}
	}
	// LastEventID echoes the client's next resume point: the newest event
	// delivered, or the unchanged resume point when the batch is empty.
	doc := watchPollDoc{LastEventID: since, Events: events}
	if n := len(events); n > 0 {
		doc.LastEventID = events[n-1].ID
	}
	if doc.Events == nil {
		doc.Events = []monitor.Event{}
	}
	writeJSON(w, http.StatusOK, doc)
}

// ---- monitor control ----

// monitorPlanDoc renders one scan plan for status responses.
type monitorPlanDoc struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Every     string `json:"every"`
	JitterPct int    `json:"jitter_pct,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Budget    int    `json:"budget,omitempty"`
}

// monitorStatusDoc is the GET /v1/monitor response body.
type monitorStatusDoc struct {
	Enabled     bool              `json:"enabled"`
	Ticks       int               `json:"ticks,omitempty"`
	ConfigHash  string            `json:"config_hash,omitempty"`
	Plans       []monitorPlanDoc  `json:"plans,omitempty"`
	Counters    *monitor.Counters `json:"counters,omitempty"`
	LastEventID uint64            `json:"last_event_id"`
}

func (s *Server) handleMonitorStatus(w http.ResponseWriter, r *http.Request) {
	doc := monitorStatusDoc{LastEventID: s.broker.LastID()}
	if s.mon != nil {
		doc.Enabled = true
		doc.Ticks = s.mon.TickCount()
		doc.ConfigHash = s.mon.ConfigHash()
		c := s.mon.Counters()
		doc.Counters = &c
		for _, p := range s.mon.Plans() {
			doc.Plans = append(doc.Plans, monitorPlanDoc{
				Name: p.Name, Kind: p.Kind, Every: p.Every.String(),
				JitterPct: p.JitterPct, Rounds: p.Rounds, Budget: p.Budget,
			})
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// monitorTickRequest is the POST /v1/monitor/tick body.
type monitorTickRequest struct {
	Ticks int `json:"ticks,omitempty"`
}

// monitorTickDoc is its response.
type monitorTickDoc struct {
	Ticks       int              `json:"ticks"`
	Events      int              `json:"events"`
	LastEventID uint64           `json:"last_event_id"`
	Counters    monitor.Counters `json:"counters"`
}

func (s *Server) handleMonitorTick(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		jsonError(w, http.StatusNotFound, "monitor disabled; start fmserve with -monitor")
		return
	}
	var req monitorTickRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Ticks <= 0 {
		req.Ticks = 1
	}
	if req.Ticks > 64 {
		jsonError(w, http.StatusBadRequest, "ticks capped at 64 per request")
		return
	}
	events, err := s.mon.TryRunTicks(r.Context(), req.Ticks)
	if err != nil {
		status := http.StatusInternalServerError
		if err == monitor.ErrBusy {
			status = http.StatusConflict
		}
		jsonError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, monitorTickDoc{
		Ticks:       req.Ticks,
		Events:      len(events),
		LastEventID: s.broker.LastID(),
		Counters:    s.mon.Counters(),
	})
}
