// Package simclock provides virtual time for the simulated Internet.
//
// The paper's confirmation methodology (§4) spans multiple days: test
// domains are submitted to a vendor's categorization service and re-tested
// "after 3-5 days". Product behaviour in this repository is therefore a
// deterministic function of a Clock, and tests replay multi-day campaigns
// instantly by advancing a Manual clock.
//
// Two implementations are provided: System (wraps the wall clock, for the
// loopback-serving binaries) and Manual (test- and campaign-driven).
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source consumed by the rest of the system.
//
// Components must never call time.Now directly; everything time-dependent
// (submission review delays, database sync windows, license churn) is
// derived from a Clock so that campaigns are deterministic and replayable.
type Clock interface {
	// Now reports the current virtual time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once
	// the clock has advanced by at least d.
	After(d time.Duration) <-chan time.Time
}

// System is a Clock backed by the operating system's wall clock.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Epoch is the default start time for Manual clocks. It is set shortly
// before the paper's first case-study date (September 2012) so that
// campaign timestamps land in the periods reported in Table 3.
var Epoch = time.Date(2012, time.September, 1, 0, 0, 0, 0, time.UTC)

// Manual is a deterministic, manually advanced Clock.
//
// The zero value is not usable; construct with NewManual. Manual is safe
// for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewManual returns a Manual clock starting at start. If start is the zero
// time, Epoch is used.
func NewManual(start time.Time) *Manual {
	if start.IsZero() {
		start = Epoch
	}
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock to or past now+d. A non-positive d fires immediately.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.waiters = append(m.waiters, waiter{at: m.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d (which must be non-negative) and
// fires any waiters whose deadline has been reached, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: negative advance")
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var due, keep []waiter
	for _, w := range m.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			keep = append(keep, w)
		}
	}
	m.waiters = keep
	m.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- now
	}
}

// AdvanceTo moves the clock to t. It panics if t is earlier than Now.
func (m *Manual) AdvanceTo(t time.Time) {
	m.mu.Lock()
	now := m.now
	m.mu.Unlock()
	d := t.Sub(now)
	if d < 0 {
		panic("simclock: AdvanceTo into the past")
	}
	m.Advance(d)
}

// Days is a convenience for expressing the paper's multi-day waits.
func Days(n int) time.Duration { return time.Duration(n) * 24 * time.Hour }
