package simclock

import (
	"testing"
	"time"
)

func TestManualStartsAtEpoch(t *testing.T) {
	c := NewManual(time.Time{})
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want Epoch %v", c.Now(), Epoch)
	}
}

func TestManualStartsAtGivenTime(t *testing.T) {
	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
}

func TestManualAdvance(t *testing.T) {
	c := NewManual(time.Time{})
	c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestManualAdvanceTo(t *testing.T) {
	c := NewManual(time.Time{})
	target := Epoch.Add(Days(4))
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("Now() = %v, want %v", c.Now(), target)
	}
}

func TestManualAdvanceToPastPanics(t *testing.T) {
	c := NewManual(time.Time{})
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(Epoch)
}

func TestManualNegativeAdvancePanics(t *testing.T) {
	c := NewManual(time.Time{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestAfterFiresOnAdvance(t *testing.T) {
	c := NewManual(time.Time{})
	ch := c.After(time.Hour)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	c.Advance(time.Hour)
	select {
	case got := <-ch:
		if !got.Equal(Epoch.Add(time.Hour)) {
			t.Fatalf("After delivered %v, want %v", got, Epoch.Add(time.Hour))
		}
	default:
		t.Fatal("After did not fire after Advance")
	}
}

func TestAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewManual(time.Time{})
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-c.After(-time.Minute):
	default:
		t.Fatal("After(negative) did not fire immediately")
	}
}

func TestAfterPartialAdvance(t *testing.T) {
	c := NewManual(time.Time{})
	ch := c.After(2 * time.Hour)
	c.Advance(time.Hour)
	select {
	case <-ch:
		t.Fatal("After fired early")
	default:
	}
	c.Advance(time.Hour)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestMultipleWaitersFireInOrder(t *testing.T) {
	c := NewManual(time.Time{})
	ch1 := c.After(time.Hour)
	ch2 := c.After(2 * time.Hour)
	ch3 := c.After(3 * time.Hour)
	c.Advance(Days(1))
	for i, ch := range []<-chan time.Time{ch1, ch2, ch3} {
		select {
		case <-ch:
		default:
			t.Fatalf("waiter %d did not fire", i+1)
		}
	}
}

func TestDays(t *testing.T) {
	if Days(4) != 96*time.Hour {
		t.Fatalf("Days(4) = %v, want 96h", Days(4))
	}
}

func TestSystemClock(t *testing.T) {
	var c System
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System.Now() = %v outside [%v, %v]", got, before, after)
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("System.After(1ms) did not fire within 1s")
	}
}

func TestManualConcurrentAccess(t *testing.T) {
	c := NewManual(time.Time{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			c.Advance(time.Minute)
		}
	}()
	for i := 0; i < 100; i++ {
		_ = c.Now()
		_ = c.After(time.Hour)
	}
	<-done
}
