package store

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestStorePropertyRandomOps drives the store through seeded random
// sequences of append / duplicate-append / reopen / compact and checks,
// after every operation, that no acknowledged snapshot is ever lost and
// that every selector form still resolves to it. The segment threshold
// is tiny so rotation, sealed-segment indexing and compaction all run
// constantly rather than only at 4 MiB scale.
func TestStorePropertyRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 20130827} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testStoreRandomOps(t, rand.New(rand.NewSource(seed)))
		})
	}
}

// ack is one acknowledged append: what the store promised to keep.
type ack struct {
	seq  uint64
	id   string
	kind string
	body string
}

func testStoreRandomOps(t *testing.T, rng *rand.Rand) {
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(dir, WithMaxSegmentBytes(512), WithoutSync())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return s
	}
	s := open()
	defer func() { s.Close() }()

	kinds := []string{"identify", "table4", "discovery"}
	configs := []string{"cfg-a", "cfg-b"}
	base := time.Date(2012, 9, 1, 0, 0, 0, 0, time.UTC)

	acked := make(map[uint64]ack) // seq -> newest acknowledged content
	var order []uint64            // distinct seqs in append order
	var last ack
	haveLast := false

	appendOne := func(dup bool) {
		var snap Snapshot
		if dup && haveLast {
			// Re-submit the previous content under its own kind/config:
			// the store must dedupe onto the same record, not mint a new
			// sequence number.
			prev := acked[last.seq]
			snap = Snapshot{Kind: prev.kind, At: base, Config: configFor(t, s, prev.seq), Body: json.RawMessage(prev.body)}
		} else {
			body := fmt.Sprintf(`{"n":%d,"pad":"%x"}`, rng.Intn(1000), rng.Int63())
			snap = Snapshot{
				Kind:   kinds[rng.Intn(len(kinds))],
				At:     base.Add(time.Duration(len(order)) * time.Hour),
				Config: configs[rng.Intn(len(configs))],
				Body:   json.RawMessage(body),
			}
		}
		meta, err := s.Append(snap)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if meta.Deduped {
			prev, ok := acked[meta.Seq]
			if !ok {
				t.Fatalf("dedup onto unknown seq %d", meta.Seq)
			}
			if prev.id != meta.ID {
				t.Fatalf("dedup changed id: %s -> %s", prev.id, meta.ID)
			}
			return
		}
		if _, exists := acked[meta.Seq]; exists {
			t.Fatalf("append reused live seq %d", meta.Seq)
		}
		canon, err := canonicalBody(snap.Body)
		if err != nil {
			t.Fatalf("canonicalize: %v", err)
		}
		a := ack{seq: meta.Seq, id: meta.ID, kind: meta.Kind, body: string(canon)}
		acked[meta.Seq] = a
		order = append(order, meta.Seq)
		last, haveLast = a, true
	}

	check := func(stage string) {
		t.Helper()
		if got := s.Count(); got != len(order) {
			t.Fatalf("%s: Count = %d, want %d", stage, got, len(order))
		}
		metas := s.List(Query{})
		if len(metas) != len(order) {
			t.Fatalf("%s: List = %d records, want %d", stage, len(metas), len(order))
		}
		for i, m := range metas {
			if m.Seq != order[i] {
				t.Fatalf("%s: List[%d].Seq = %d, want %d (order drifted)", stage, i, m.Seq, order[i])
			}
		}
		for _, seq := range order {
			want := acked[seq]
			m, body, err := s.Get(fmt.Sprintf("%d", seq))
			if err != nil {
				t.Fatalf("%s: lost acknowledged seq %d: %v", stage, seq, err)
			}
			if m.ID != want.id || m.Kind != want.kind {
				t.Fatalf("%s: seq %d drifted: id %s kind %s, want %s %s", stage, seq, m.ID, m.Kind, want.id, want.kind)
			}
			if string(body) != want.body {
				t.Fatalf("%s: seq %d body drifted:\n got %s\nwant %s", stage, seq, body, want.body)
			}
			if m2, _, err := s.Get(want.id); err != nil || m2.ID != want.id {
				t.Fatalf("%s: content-ID selector %q broken: %v", stage, want.id, err)
			}
		}
		if len(order) > 0 {
			tail := acked[order[len(order)-1]]
			m, _, err := s.Get("latest")
			if err != nil || m.Seq != tail.seq {
				t.Fatalf("%s: latest = seq %d err %v, want seq %d", stage, m.Seq, err, tail.seq)
			}
			for _, kind := range kinds {
				var want uint64
				for i := len(order) - 1; i >= 0; i-- {
					if acked[order[i]].kind == kind {
						want = order[i]
						break
					}
				}
				m, _, err := s.Get("latest:" + kind)
				if want == 0 {
					if err == nil {
						t.Fatalf("%s: latest:%s resolved with no %s snapshots", stage, kind, kind)
					}
					continue
				}
				if err != nil || m.Seq != want {
					t.Fatalf("%s: latest:%s = seq %d err %v, want seq %d", stage, kind, m.Seq, err, want)
				}
			}
		}
	}

	const ops = 250
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 55:
			appendOne(false)
		case r < 70:
			appendOne(true)
		case r < 85:
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			s = open()
		default:
			if err := s.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
		check(fmt.Sprintf("op %d", i))
	}
	// Final reopen after a compact: the rewritten log must still carry
	// every acknowledged record.
	if err := s.Compact(); err != nil {
		t.Fatalf("final compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	s = open()
	check("final reopen")
}

// configFor recovers a stored record's config hash so a duplicate append
// targets the same (kind, config) dedup bucket.
func configFor(t *testing.T, s *Store, seq uint64) string {
	t.Helper()
	m, _, err := s.Get(fmt.Sprintf("%d", seq))
	if err != nil {
		t.Fatalf("configFor seq %d: %v", seq, err)
	}
	return m.Config
}
