// Package store is the longitudinal persistence layer: an append-only,
// content-addressed snapshot log for identification reports, Table 4
// characterization matrices, and any other JSON document the pipelines
// produce over time.
//
// Layout on disk is a sequence of JSONL segment files (seg-000001.jsonl,
// seg-000002.jsonl, ...) plus an index file (index.json) covering the
// sealed (non-tail) segments. Each line is one record: a small envelope
// (sequence number, content ID, kind, virtual timestamp, world-config
// hash, note) around either the document body or a reference to an
// earlier record with the same content. The content ID is a truncated
// SHA-256 over (kind, config hash, canonical body), so identical world
// states hash to identical IDs no matter who produced them.
//
// Durability model:
//
//   - Append writes one line and fsyncs before returning (disable with
//     WithoutSync for bulk loads and benchmarks).
//   - Sealed segments are immutable; only the tail segment is appended to.
//   - Open replays the log: sealed segments come from the index when its
//     recorded sizes match the files (full rescan otherwise), and the tail
//     segment is always re-scanned. A corrupt tail — a torn line from a
//     crash mid-append, or a body whose recomputed content ID disagrees
//     with its envelope — is truncated at the first bad byte and the store
//     opens cleanly; corruption in a sealed segment is a hard error.
//   - Append with content identical to the latest snapshot of the same
//     (kind, config) pair is deduplicated: no record is written and the
//     existing Meta is returned with Deduped set.
//   - Compact rewrites the whole log into a single fresh segment in which
//     each distinct content body is stored once and repeats become
//     references. The new segment is fsynced before the old ones are
//     removed, and Open tolerates the overlap a crash between those two
//     steps leaves behind (duplicate sequence numbers are skipped).
//
// Open with an empty directory path returns a memory-backed store with
// the same API and no persistence — the fmserve default when no -store
// directory is configured.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// segPattern names segment files; segments are numbered from 1 and read
// in numeric order.
const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
	indexFile = "index.json"
)

// ErrNotFound reports a Get selector matching no snapshot.
var ErrNotFound = errors.New("store: snapshot not found")

// ErrAmbiguous reports a Get ID prefix matching more than one content ID.
var ErrAmbiguous = errors.New("store: ambiguous snapshot id prefix")

// ErrCorrupt reports corruption outside the truncatable tail.
var ErrCorrupt = errors.New("store: corrupt segment")

// Options tunes a Store.
type Options struct {
	// MaxSegmentBytes is the rotation threshold (default 4 MiB).
	MaxSegmentBytes int64
	// DisableSync skips the per-append fsync (bulk loads, benchmarks).
	DisableSync bool
}

// Option mutates Options.
type Option func(*Options)

// WithMaxSegmentBytes sets the segment rotation threshold.
func WithMaxSegmentBytes(n int64) Option { return func(o *Options) { o.MaxSegmentBytes = n } }

// WithoutSync disables the per-append fsync.
func WithoutSync() Option { return func(o *Options) { o.DisableSync = true } }

// Snapshot is one world observation to persist.
type Snapshot struct {
	// Kind classifies the body ("identify", "table4", ...). The store is
	// kind-agnostic; the longitudinal diff engine interprets kinds.
	Kind string
	// At is the virtual timestamp of the observation (the simulated
	// clock's reading, not wall time).
	At time.Time
	// Config is the world-configuration hash the observation ran under
	// (see ConfigHash).
	Config string
	// Note is free-form caller annotation.
	Note string
	// Body is the JSON document. It is canonicalized (compacted) before
	// hashing and storage.
	Body json.RawMessage
}

// Meta describes one stored snapshot.
type Meta struct {
	// Seq is the monotonic record number (1-based).
	Seq uint64 `json:"seq"`
	// ID is the content address: hex SHA-256 over (kind, config, body),
	// truncated to 16 characters.
	ID string `json:"id"`
	// Kind, At, Config and Note echo the Snapshot.
	Kind   string    `json:"kind"`
	At     time.Time `json:"at"`
	Config string    `json:"config,omitempty"`
	Note   string    `json:"note,omitempty"`
	// Bytes is the canonical body size.
	Bytes int `json:"bytes"`
	// Deduped reports that an Append was collapsed onto this existing
	// record because its content matched the latest snapshot of the same
	// (kind, config). Only ever set on the Meta returned by Append.
	Deduped bool `json:"deduped,omitempty"`
}

// Query filters List.
type Query struct {
	// Kind restricts to one snapshot kind ("" = all).
	Kind string
	// Config restricts to one world-config hash ("" = all).
	Config string
	// Since/Until bound the virtual timestamp (zero = unbounded).
	// Since is inclusive, Until exclusive.
	Since time.Time
	Until time.Time
}

// line is the JSONL on-disk record envelope. Exactly one of Body and Ref
// is set: Ref points at the content ID of an earlier record whose line
// carries the body.
type line struct {
	Seq    uint64          `json:"seq"`
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	At     time.Time       `json:"at"`
	Config string          `json:"config,omitempty"`
	Note   string          `json:"note,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Ref    string          `json:"ref,omitempty"`
}

// rec is the in-memory index entry for one record.
type rec struct {
	meta Meta
	seg  int
	off  int64
	llen int64 // full line length including trailing newline
	ref  string
	body []byte // memory mode only
}

// indexDoc is the persisted index: metadata and offsets for every record
// in the sealed segments, with recorded file sizes for validation. It is
// a rebuildable cache — any disagreement with the segment files triggers
// a full rescan.
type indexDoc struct {
	Segments []indexSegment `json:"segments"`
}

type indexSegment struct {
	Seg     int        `json:"seg"`
	Size    int64      `json:"size"`
	Records []indexRec `json:"records"`
}

type indexRec struct {
	Meta Meta   `json:"meta"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	Ref  string `json:"ref,omitempty"`
}

// Store is the snapshot log. All methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string // "" = memory mode
	opts Options

	recs        []rec
	bySeq       map[uint64]int
	byID        map[string][]int
	latestByKey map[string]int // kind+"\x00"+config -> newest rec index

	segIdx   int
	tail     *os.File
	tailSize int64

	recovered int64 // bytes truncated from the tail at Open
	closed    bool

	// observers run after each non-deduped append, outside mu (own lock
	// so observers can re-enter the store).
	obsMu     sync.Mutex
	observers []func(Meta)
}

// Open opens (or creates) the store rooted at dir. An empty dir returns
// a memory-backed store with no persistence.
func Open(dir string, opts ...Option) (*Store, error) {
	o := Options{MaxSegmentBytes: 4 << 20}
	for _, fn := range opts {
		fn(&o)
	}
	s := &Store{
		dir:         dir,
		opts:        o,
		bySeq:       make(map[uint64]int),
		byID:        make(map[string][]int),
		latestByKey: make(map[string]int),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// RecoveredBytes reports how many corrupt tail bytes Open truncated
// (0 when the log was clean).
func (s *Store) RecoveredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Count returns the number of stored snapshots.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Dir returns the store's directory ("" for a memory store).
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the tail segment. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.tail != nil {
		if err := s.tail.Sync(); err != nil {
			s.tail.Close()
			return fmt.Errorf("store: close: %w", err)
		}
		return s.tail.Close()
	}
	return nil
}

// ---- hashing ----

// ContentID computes the content address of a snapshot body: hex SHA-256
// over (kind, config, canonical body), truncated to 16 characters. The
// body must already be canonical (compact) JSON.
func ContentID(kind, config string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(config))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ConfigHash hashes an arbitrary configuration value (canonically
// JSON-marshaled) to a 16-character hex string. The server's result-cache
// keys and the store's snapshot records use the same hash, so a cached
// body and a persisted snapshot produced under the same world options
// carry the same config fingerprint.
func ConfigHash(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Config structs marshal by construction; collapse the degenerate
		// case onto a fixed sentinel rather than failing the caller.
		b = []byte("unmarshalable")
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16]
}

// canonicalBody compacts body (stripping insignificant whitespace) so
// hashing and storage are independent of the producer's encoder.
func canonicalBody(body json.RawMessage) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, body); err != nil {
		return nil, fmt.Errorf("store: invalid snapshot body: %w", err)
	}
	return buf.Bytes(), nil
}

// ---- append ----

// OnAppend registers fn to run after every append that writes a new
// record; deduped appends (content unchanged) do not fire. fn runs on
// the appending goroutine after the store's lock is released, so it may
// call back into the store. Observers cannot be unregistered; register
// once per store lifetime. The server uses this to invalidate cached
// reports the moment a newer snapshot of the same (kind, config) lands.
func (s *Store) OnAppend(fn func(Meta)) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.observers = append(s.observers, fn)
}

func (s *Store) notifyAppend(meta Meta) {
	s.obsMu.Lock()
	obs := s.observers
	s.obsMu.Unlock()
	for _, fn := range obs {
		fn(meta)
	}
}

// Append persists one snapshot and returns its Meta. If the snapshot's
// content matches the latest stored snapshot of the same (kind, config),
// nothing is written and the existing Meta is returned with Deduped set.
// Non-deduped appends fire the OnAppend observers before returning.
func (s *Store) Append(snap Snapshot) (Meta, error) {
	meta, err := s.append(snap)
	if err == nil && !meta.Deduped {
		s.notifyAppend(meta)
	}
	return meta, err
}

func (s *Store) append(snap Snapshot) (Meta, error) {
	if snap.Kind == "" {
		return Meta{}, errors.New("store: snapshot kind required")
	}
	body, err := canonicalBody(snap.Body)
	if err != nil {
		return Meta{}, err
	}
	id := ContentID(snap.Kind, snap.Config, body)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Meta{}, errors.New("store: closed")
	}
	if i, ok := s.latestByKey[snap.Kind+"\x00"+snap.Config]; ok && s.recs[i].meta.ID == id {
		m := s.recs[i].meta
		m.Deduped = true
		return m, nil
	}

	var seq uint64 = 1
	if n := len(s.recs); n > 0 {
		seq = s.recs[n-1].meta.Seq + 1
	}
	meta := Meta{
		Seq:    seq,
		ID:     id,
		Kind:   snap.Kind,
		At:     snap.At.UTC(),
		Config: snap.Config,
		Note:   snap.Note,
		Bytes:  len(body),
	}
	r := rec{meta: meta}
	if s.dir == "" {
		r.body = body
		s.addRecLocked(r)
		return meta, nil
	}

	ln, err := marshalLine(meta, body, "")
	if err != nil {
		return Meta{}, err
	}
	if err := s.ensureTailLocked(int64(len(ln))); err != nil {
		return Meta{}, err
	}
	off := s.tailSize
	if _, err := s.tail.Write(ln); err != nil {
		return Meta{}, fmt.Errorf("store: append: %w", err)
	}
	if !s.opts.DisableSync {
		if err := s.tail.Sync(); err != nil {
			return Meta{}, fmt.Errorf("store: fsync: %w", err)
		}
	}
	s.tailSize += int64(len(ln))
	r.seg, r.off, r.llen = s.segIdx, off, int64(len(ln))
	s.addRecLocked(r)
	return meta, nil
}

func marshalLine(meta Meta, body []byte, ref string) ([]byte, error) {
	l := line{
		Seq:    meta.Seq,
		ID:     meta.ID,
		Kind:   meta.Kind,
		At:     meta.At,
		Config: meta.Config,
		Note:   meta.Note,
		Body:   body,
		Ref:    ref,
	}
	b, err := json.Marshal(l)
	if err != nil {
		return nil, fmt.Errorf("store: marshal record: %w", err)
	}
	return append(b, '\n'), nil
}

func (s *Store) addRecLocked(r rec) {
	i := len(s.recs)
	s.recs = append(s.recs, r)
	s.bySeq[r.meta.Seq] = i
	s.byID[r.meta.ID] = append(s.byID[r.meta.ID], i)
	s.latestByKey[r.meta.Kind+"\x00"+r.meta.Config] = i
}

// ensureTailLocked opens the tail segment if needed and rotates when the
// incoming line would push it past the rotation threshold.
func (s *Store) ensureTailLocked(incoming int64) error {
	if s.tail == nil {
		if s.segIdx == 0 {
			s.segIdx = 1
		}
		return s.openTailLocked()
	}
	if s.tailSize > 0 && s.tailSize+incoming > s.opts.MaxSegmentBytes {
		if err := s.tail.Sync(); err != nil {
			return fmt.Errorf("store: seal segment: %w", err)
		}
		if err := s.tail.Close(); err != nil {
			return fmt.Errorf("store: seal segment: %w", err)
		}
		s.tail = nil
		s.segIdx++
		if err := s.openTailLocked(); err != nil {
			return err
		}
		// The previous tail is sealed: refresh the on-disk index so the
		// next Open can skip rescanning it.
		s.writeIndexLocked()
	}
	return nil
}

func (s *Store) openTailLocked() error {
	f, err := os.OpenFile(s.segPath(s.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	s.tail = f
	s.tailSize = st.Size()
	s.syncDir()
	return nil
}

func (s *Store) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segPrefix, idx, segSuffix))
}

// syncDir fsyncs the store directory (best effort; not all platforms
// support directory fsync).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}

// ---- open / recovery ----

// load replays the log into memory: sealed segments from the index when
// it validates, the tail by scanning (with corrupt-tail truncation).
func (s *Store) load() error {
	segs, err := s.segmentIndices()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		s.segIdx = 1
		return s.openTailLocked()
	}
	tailSeg := segs[len(segs)-1]

	var loaded []rec
	sealed := segs[:len(segs)-1]
	fromIndex := s.loadSealedFromIndex(sealed)
	if fromIndex != nil {
		loaded = fromIndex
	} else {
		for _, idx := range sealed {
			recs, _, err := s.scanSegment(idx, false)
			if err != nil {
				return err
			}
			loaded = append(loaded, recs...)
		}
	}

	tailRecs, truncated, err := s.scanSegment(tailSeg, true)
	if err != nil {
		return err
	}
	loaded = append(loaded, tailRecs...)
	s.recovered = truncated

	// Tolerate duplicate sequence numbers (an interrupted Compact leaves
	// the combined segment alongside the originals): first occurrence
	// wins — the earlier copy is the one holding bodies.
	for _, r := range loaded {
		if _, dup := s.bySeq[r.meta.Seq]; dup {
			continue
		}
		s.addRecLocked(r)
	}
	// Refs must resolve to a body-bearing record of the same content.
	for _, r := range s.recs {
		if r.ref == "" {
			continue
		}
		if _, err := s.bodyRecLocked(r.meta.ID); err != nil {
			return fmt.Errorf("%w: record %d references missing body %s", ErrCorrupt, r.meta.Seq, r.meta.ID)
		}
	}
	s.segIdx = tailSeg
	if err := s.openTailLocked(); err != nil {
		return err
	}
	if fromIndex == nil {
		s.writeIndexLocked()
	}
	return nil
}

// segmentIndices lists segment numbers present on disk, ascending.
func (s *Store) segmentIndices() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n < 1 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// loadSealedFromIndex returns the sealed segments' records from the index
// file, or nil when the index is absent or disagrees with the files (the
// caller falls back to a full rescan).
func (s *Store) loadSealedFromIndex(sealed []int) []rec {
	if len(sealed) == 0 {
		return nil
	}
	b, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if err != nil {
		return nil
	}
	var doc indexDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil
	}
	bySeg := make(map[int]indexSegment, len(doc.Segments))
	for _, seg := range doc.Segments {
		bySeg[seg.Seg] = seg
	}
	var out []rec
	for _, idx := range sealed {
		seg, ok := bySeg[idx]
		if !ok {
			return nil
		}
		st, err := os.Stat(s.segPath(idx))
		if err != nil || st.Size() != seg.Size {
			return nil
		}
		for _, ir := range seg.Records {
			out = append(out, rec{meta: ir.Meta, seg: idx, off: ir.Off, llen: ir.Len, ref: ir.Ref})
		}
	}
	return out
}

// writeIndexLocked persists the sealed segments' index (atomically, via
// temp file + rename). Best effort: the index is a rebuildable cache, so
// failures are swallowed and the next Open rescans.
func (s *Store) writeIndexLocked() {
	var doc indexDoc
	bySeg := make(map[int]*indexSegment)
	for _, r := range s.recs {
		if r.seg == s.segIdx { // tail is always rescanned; don't index it
			continue
		}
		seg, ok := bySeg[r.seg]
		if !ok {
			st, err := os.Stat(s.segPath(r.seg))
			if err != nil {
				return
			}
			doc.Segments = append(doc.Segments, indexSegment{Seg: r.seg, Size: st.Size()})
			seg = &doc.Segments[len(doc.Segments)-1]
			bySeg[r.seg] = seg
		}
		seg.Records = append(seg.Records, indexRec{Meta: r.meta, Off: r.off, Len: r.llen, Ref: r.ref})
	}
	// Map iteration above never reorders: records were walked in seq
	// order, so each segment's slice is already offset-ordered.
	b, err := json.Marshal(doc)
	if err != nil {
		return
	}
	tmp := filepath.Join(s.dir, indexFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(s.dir, indexFile)) //nolint:errcheck
}

// scanSegment replays one segment file. For the tail segment (tail=true)
// a corrupt record truncates the file at the first bad byte and the scan
// returns what preceded it; for sealed segments corruption is fatal.
func (s *Store) scanSegment(idx int, tail bool) (recs []rec, truncated int64, err error) {
	path := s.segPath(idx)
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	var off int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	corruptAt := int64(-1)
	for sc.Scan() {
		raw := sc.Bytes()
		llen := int64(len(raw)) + 1
		var l line
		bad := json.Unmarshal(raw, &l) != nil || l.Seq == 0 || l.ID == "" || l.Kind == "" ||
			(len(l.Body) == 0) == (l.Ref == "")
		if !bad && len(l.Body) > 0 {
			// Content addressing doubles as an integrity check: a body
			// that no longer hashes to its envelope's ID is a torn or
			// bit-rotted record.
			canon, cerr := canonicalBody(l.Body)
			if cerr != nil || ContentID(l.Kind, l.Config, canon) != l.ID {
				bad = true
			}
		}
		if bad {
			corruptAt = off
			break
		}
		meta := Meta{Seq: l.Seq, ID: l.ID, Kind: l.Kind, At: l.At, Config: l.Config, Note: l.Note}
		if len(l.Body) > 0 {
			canon, _ := canonicalBody(l.Body)
			meta.Bytes = len(canon)
		}
		recs = append(recs, rec{meta: meta, seg: idx, off: off, llen: llen, ref: l.Ref})
		off += llen
	}
	if err := sc.Err(); err != nil && corruptAt < 0 {
		// An unterminated or over-long final line is tail corruption too.
		corruptAt = off
	}
	if corruptAt < 0 {
		// The scanner treats a final line without '\n' as complete; detect
		// the torn-tail case by comparing consumed vs actual size.
		st, serr := f.Stat()
		if serr != nil {
			return nil, 0, fmt.Errorf("store: %w", serr)
		}
		if off < st.Size() {
			// Trailing bytes that parsed as a record but lack the
			// terminating newline: treat the final record as torn unless
			// it round-trips exactly. Simplest correct rule: re-verify by
			// size; a clean segment's offsets always sum to its size.
			corruptAt = off
			if len(recs) > 0 {
				last := &recs[len(recs)-1]
				if last.off+last.llen-1 == st.Size() {
					// Final line is complete except for the newline the
					// scanner consumed; accept it and append the newline.
					corruptAt = -1
					if tail {
						af, aerr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
						if aerr == nil {
							af.WriteString("\n") //nolint:errcheck
							af.Close()
						}
					}
				}
			}
		}
	}
	if corruptAt >= 0 {
		if !tail {
			return nil, 0, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, filepath.Base(path), corruptAt)
		}
		st, serr := f.Stat()
		if serr != nil {
			return nil, 0, fmt.Errorf("store: %w", serr)
		}
		truncated = st.Size() - corruptAt
		if err := os.Truncate(path, corruptAt); err != nil {
			return nil, 0, fmt.Errorf("store: truncate corrupt tail: %w", err)
		}
	}
	return recs, truncated, nil
}

// ---- read path ----

// bodyRecLocked returns the first record carrying the body for id.
func (s *Store) bodyRecLocked(id string) (rec, error) {
	for _, i := range s.byID[id] {
		if s.recs[i].ref == "" {
			return s.recs[i], nil
		}
	}
	return rec{}, fmt.Errorf("%w: no body for id %s", ErrCorrupt, id)
}

// readBodyLocked fetches and verifies a record's body.
func (s *Store) readBodyLocked(r rec) ([]byte, error) {
	br := r
	if r.ref != "" {
		var err error
		if br, err = s.bodyRecLocked(r.meta.ID); err != nil {
			return nil, err
		}
	}
	if s.dir == "" {
		return br.body, nil
	}
	f, err := os.Open(s.segPath(br.seg))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	buf := make([]byte, br.llen)
	if _, err := f.ReadAt(buf, br.off); err != nil {
		return nil, fmt.Errorf("store: read record: %w", err)
	}
	var l line
	if err := json.Unmarshal(bytes.TrimRight(buf, "\n"), &l); err != nil {
		return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, br.meta.Seq, err)
	}
	body, err := canonicalBody(l.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: record %d: %v", ErrCorrupt, br.meta.Seq, err)
	}
	if ContentID(l.Kind, l.Config, body) != br.meta.ID {
		return nil, fmt.Errorf("%w: record %d: content hash mismatch", ErrCorrupt, br.meta.Seq)
	}
	return body, nil
}

// Get resolves a selector to a snapshot and returns its Meta and body.
// Selectors: "latest" (newest snapshot), "latest:<kind>" (newest of a
// kind), a decimal sequence number, or a content-ID prefix (4+ hex
// characters, unique).
func (s *Store) Get(selector string) (Meta, json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, err := s.resolveLocked(selector)
	if err != nil {
		return Meta{}, nil, err
	}
	body, err := s.readBodyLocked(s.recs[i])
	if err != nil {
		return Meta{}, nil, err
	}
	return s.recs[i].meta, body, nil
}

func (s *Store) resolveLocked(selector string) (int, error) {
	selector = strings.TrimSpace(selector)
	if selector == "" {
		return 0, fmt.Errorf("%w: empty selector", ErrNotFound)
	}
	if selector == "latest" {
		if len(s.recs) == 0 {
			return 0, ErrNotFound
		}
		return len(s.recs) - 1, nil
	}
	if kind, ok := strings.CutPrefix(selector, "latest:"); ok {
		for i := len(s.recs) - 1; i >= 0; i-- {
			if s.recs[i].meta.Kind == kind {
				return i, nil
			}
		}
		return 0, fmt.Errorf("%w: no %q snapshot", ErrNotFound, kind)
	}
	if seq, err := strconv.ParseUint(selector, 10, 64); err == nil {
		if i, ok := s.bySeq[seq]; ok {
			return i, nil
		}
		return 0, fmt.Errorf("%w: seq %d", ErrNotFound, seq)
	}
	// Content-ID prefix: newest record of the (unique) matching ID.
	match := -1
	matchID := ""
	for id, idxs := range s.byID {
		if !strings.HasPrefix(id, selector) {
			continue
		}
		if matchID != "" && matchID != id {
			return 0, fmt.Errorf("%w: %q", ErrAmbiguous, selector)
		}
		matchID = id
		if last := idxs[len(idxs)-1]; last > match {
			match = last
		}
	}
	if match < 0 {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, selector)
	}
	return match, nil
}

// List returns snapshot metadata matching q, in append order.
func (s *Store) List(q Query) []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Meta
	for _, r := range s.recs {
		m := r.meta
		if q.Kind != "" && m.Kind != q.Kind {
			continue
		}
		if q.Config != "" && m.Config != q.Config {
			continue
		}
		if !q.Since.IsZero() && m.At.Before(q.Since) {
			continue
		}
		if !q.Until.IsZero() && !m.At.Before(q.Until) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// LastSeq returns the newest record's sequence number (0 when empty).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.recs) == 0 {
		return 0
	}
	return s.recs[len(s.recs)-1].meta.Seq
}

// TailRecord is one record of a TailAfter read: metadata plus the
// canonical body.
type TailRecord struct {
	Meta Meta            `json:"meta"`
	Body json.RawMessage `json:"body"`
}

// TailAfter returns up to limit records with sequence numbers strictly
// greater than after, in sequence order, bodies included — the
// replication-log read path (limit <= 0 means no limit).
func (s *Store) TailAfter(after uint64, limit int) ([]TailRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TailRecord
	for _, r := range s.recs {
		if r.meta.Seq <= after {
			continue
		}
		if limit > 0 && len(out) >= limit {
			break
		}
		body, err := s.readBodyLocked(r)
		if err != nil {
			return nil, err
		}
		out = append(out, TailRecord{Meta: r.meta, Body: body})
	}
	return out, nil
}

// Latest returns the newest snapshot of (kind, config); config "" means
// any config.
func (s *Store) Latest(kind, config string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if config != "" {
		if i, ok := s.latestByKey[kind+"\x00"+config]; ok {
			return s.recs[i].meta, true
		}
		return Meta{}, false
	}
	for i := len(s.recs) - 1; i >= 0; i-- {
		if s.recs[i].meta.Kind == kind {
			return s.recs[i].meta, true
		}
	}
	return Meta{}, false
}

// ---- compaction ----

// Compact rewrites the log into a single fresh segment in which each
// distinct content body appears once (later repeats become references),
// then removes the old segments. A no-op for memory stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" || len(s.recs) == 0 {
		return nil
	}
	if s.closed {
		return errors.New("store: closed")
	}

	newIdx := s.segIdx + 1
	path := s.segPath(newIdx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	seenBody := make(map[string]bool)
	newRecs := make([]rec, 0, len(s.recs))
	var off int64
	for _, r := range s.recs {
		var ln []byte
		nr := rec{meta: r.meta, seg: newIdx}
		if seenBody[r.meta.ID] {
			nr.ref = r.meta.ID
			ln, err = marshalLine(r.meta, nil, r.meta.ID)
		} else {
			var body []byte
			body, err = s.readBodyLocked(r)
			if err == nil {
				// Meta.Bytes can be zero for ref records loaded before
				// their body was read; refresh it from the real body.
				nr.meta.Bytes = len(body)
				ln, err = marshalLine(nr.meta, body, "")
				seenBody[r.meta.ID] = true
			}
		}
		if err != nil {
			f.Close()
			os.Remove(path) //nolint:errcheck
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := f.Write(ln); err != nil {
			f.Close()
			os.Remove(path) //nolint:errcheck
			return fmt.Errorf("store: compact: %w", err)
		}
		nr.off, nr.llen = off, int64(len(ln))
		off += int64(len(ln))
		newRecs = append(newRecs, nr)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.syncDir()

	// The combined segment is durable; old segments are now redundant.
	// A crash before the removals finish leaves duplicates that Open
	// skips by sequence number.
	oldTail := s.tail
	for seg := 1; seg <= s.segIdx; seg++ {
		os.Remove(s.segPath(seg)) //nolint:errcheck
	}
	if oldTail != nil {
		oldTail.Close()
	}
	s.tail = nil
	s.segIdx = newIdx
	s.recs = newRecs
	s.bySeq = make(map[uint64]int)
	s.byID = make(map[string][]int)
	s.latestByKey = make(map[string]int)
	recs := s.recs
	s.recs = nil
	for _, r := range recs {
		s.addRecLocked(r)
	}
	if err := s.openTailLocked(); err != nil {
		return err
	}
	s.tailSize = off
	s.writeIndexLocked()
	return nil
}
