package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"filtermap/internal/simclock"
)

func testSnap(kind string, at time.Time, payload string) Snapshot {
	return Snapshot{
		Kind:   kind,
		At:     at,
		Config: "cfg0000deadbeef0",
		Body:   json.RawMessage(fmt.Sprintf(`{"payload": %q}`, payload)),
	}
}

func TestAppendGetListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	at := simclock.Epoch
	var metas []Meta
	for i := 0; i < 5; i++ {
		m, err := s.Append(testSnap("identify", at.Add(time.Duration(i)*24*time.Hour), fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if m.Deduped {
			t.Fatalf("snapshot %d unexpectedly deduped", i)
		}
		metas = append(metas, m)
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}

	// Get by seq, by full ID, by ID prefix, and latest.
	for _, sel := range []string{"3", metas[2].ID, metas[2].ID[:6]} {
		m, body, err := s.Get(sel)
		if err != nil {
			t.Fatalf("Get(%q): %v", sel, err)
		}
		if m.Seq != 3 {
			t.Fatalf("Get(%q).Seq = %d, want 3", sel, m.Seq)
		}
		if want := `{"payload":"v2"}`; string(body) != want {
			t.Fatalf("Get(%q) body = %s, want %s", sel, body, want)
		}
	}
	if m, _, err := s.Get("latest"); err != nil || m.Seq != 5 {
		t.Fatalf("Get(latest) = %+v, %v; want seq 5", m, err)
	}
	if m, _, err := s.Get("latest:identify"); err != nil || m.Seq != 5 {
		t.Fatalf("Get(latest:identify) = %+v, %v", m, err)
	}
	if _, _, err := s.Get("latest:table4"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(latest:table4) err = %v, want ErrNotFound", err)
	}
	if _, _, err := s.Get("99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(99) err = %v, want ErrNotFound", err)
	}

	// List filters.
	if got := len(s.List(Query{Kind: "identify"})); got != 5 {
		t.Fatalf("List(identify) = %d entries, want 5", got)
	}
	if got := len(s.List(Query{Kind: "table4"})); got != 0 {
		t.Fatalf("List(table4) = %d entries, want 0", got)
	}
	mid := s.List(Query{Since: at.Add(24 * time.Hour), Until: at.Add(3 * 24 * time.Hour)})
	if len(mid) != 2 || mid[0].Seq != 2 || mid[1].Seq != 3 {
		t.Fatalf("List(time range) = %+v, want seqs 2,3", mid)
	}
}

func TestAppendDedupesConsecutiveIdenticalSnapshots(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	at := simclock.Epoch
	m1, err := s.Append(testSnap("identify", at, "same"))
	if err != nil {
		t.Fatal(err)
	}
	// Same content later: deduped onto the first record even though At
	// differs — content addressing ignores the observation time.
	m2, err := s.Append(testSnap("identify", at.Add(time.Hour), "same"))
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Deduped || m2.Seq != m1.Seq || m2.ID != m1.ID {
		t.Fatalf("second append = %+v, want dedupe onto %+v", m2, m1)
	}
	// Different kind with same body is NOT a dupe.
	if m, err := s.Append(testSnap("table4", at, "same")); err != nil || m.Deduped {
		t.Fatalf("cross-kind append = %+v, %v; want fresh record", m, err)
	}
	// Content changes, then reverts: the revert is a fresh record because
	// only the *latest* snapshot of the pair is compared.
	if m, err := s.Append(testSnap("identify", at, "changed")); err != nil || m.Deduped {
		t.Fatalf("changed append = %+v, %v", m, err)
	}
	if m, err := s.Append(testSnap("identify", at, "same")); err != nil || m.Deduped {
		t.Fatalf("reverted append = %+v, %v; want fresh record", m, err)
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]string{}
	for i := 0; i < 3; i++ {
		m, err := s.Append(testSnap("identify", simclock.Epoch.Add(time.Duration(i)*time.Hour), fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want[m.Seq] = fmt.Sprintf(`{"payload":"p%d"}`, i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.RecoveredBytes() != 0 {
		t.Fatalf("clean log reported %d recovered bytes", s2.RecoveredBytes())
	}
	if got := s2.Count(); got != len(want) {
		t.Fatalf("Count after reopen = %d, want %d", got, len(want))
	}
	for seq, body := range want {
		_, got, err := s2.Get(fmt.Sprint(seq))
		if err != nil {
			t.Fatalf("Get(%d) after reopen: %v", seq, err)
		}
		if string(got) != body {
			t.Fatalf("Get(%d) = %s, want %s", seq, got, body)
		}
	}
}

// TestTruncatedTailRecovers simulates a crash mid-append: the final JSONL
// line is cut short. Open must truncate the torn line, keep everything
// before it, and accept new appends that then round-trip.
func TestTruncatedTailRecovers(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep int // records surviving recovery
		mut  func(path string, t *testing.T)
	}{
		{"mid-line truncation", 2, func(path string, t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Chop the last line roughly in half (torn write).
			lines := strings.SplitAfter(strings.TrimSuffix(string(b), "\n"), "\n")
			last := lines[len(lines)-1]
			keep := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
			if err := os.WriteFile(path, []byte(keep), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage tail bytes", 3, func(path string, t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString("{\"seq\":9,\"id\":\"nothex\"\x00\x00garbage"); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"tampered body", 2, func(path string, t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip the payload of the final record; the content hash in
			// its envelope no longer matches, so Open must drop it.
			s := string(b)
			i := strings.LastIndex(s, "p2")
			if i < 0 {
				t.Fatal("payload marker not found")
			}
			if err := os.WriteFile(path, []byte(s[:i]+"XX"+s[i+2:]), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := s.Append(testSnap("identify", simclock.Epoch, fmt.Sprintf("p%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			cut.mut(filepath.Join(dir, "seg-000001.jsonl"), t)

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after tail corruption: %v", err)
			}
			defer s2.Close()
			if s2.RecoveredBytes() == 0 {
				t.Fatal("expected RecoveredBytes > 0 after tail corruption")
			}
			if got := s2.Count(); got != cut.keep {
				t.Fatalf("Count after recovery = %d, want %d (torn record dropped)", got, cut.keep)
			}
			// Surviving records still readable.
			if _, body, err := s2.Get("2"); err != nil || string(body) != `{"payload":"p1"}` {
				t.Fatalf("Get(2) after recovery = %s, %v", body, err)
			}
			// Append after recovery continues the sequence and
			// round-trips across another reopen.
			m, err := s2.Append(testSnap("identify", simclock.Epoch.Add(time.Hour), "post-crash"))
			if err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if want := uint64(cut.keep) + 1; m.Seq != want {
				t.Fatalf("post-recovery seq = %d, want %d", m.Seq, want)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.RecoveredBytes() != 0 {
				t.Fatalf("second reopen recovered %d bytes, want clean", s3.RecoveredBytes())
			}
			if _, body, err := s3.Get(fmt.Sprint(cut.keep + 1)); err != nil || string(body) != `{"payload":"post-crash"}` {
				t.Fatalf("post-recovery round-trip = %s, %v", body, err)
			}
		})
	}
}

func TestCorruptSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	// Tiny rotation threshold so the first appends seal a segment.
	s, err := Open(dir, WithMaxSegmentBytes(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Append(testSnap("identify", simclock.Epoch, fmt.Sprintf("pad-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got segments %v", segs)
	}
	// Remove the index so Open must rescan, then corrupt the first
	// (sealed) segment.
	os.Remove(filepath.Join(dir, "index.json"))
	if err := os.WriteFile(segs[0], []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt sealed segment: err = %v, want ErrCorrupt", err)
	}
}

func TestRotationAndCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithMaxSegmentBytes(300))
	if err != nil {
		t.Fatal(err)
	}
	// Appends with some repeated content (non-consecutive, so not
	// deduped at append time) — Compact should collapse the bodies.
	payloads := []string{"a", "b", "a", "c", "b", "a", "d", "e"}
	for i, p := range payloads {
		if _, err := s.Append(testSnap("identify", simclock.Epoch.Add(time.Duration(i)*time.Hour), p)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation before compact, got %v", segs)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	segs, _ = filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("expected single segment after compact, got %v", segs)
	}
	check := func(st *Store) {
		t.Helper()
		if got := st.Count(); got != len(payloads) {
			t.Fatalf("Count = %d, want %d", got, len(payloads))
		}
		for i, p := range payloads {
			_, body, err := st.Get(fmt.Sprint(i + 1))
			if err != nil {
				t.Fatalf("Get(%d): %v", i+1, err)
			}
			if want := fmt.Sprintf(`{"payload":%q}`, p); string(body) != want {
				t.Fatalf("Get(%d) = %s, want %s", i+1, body, want)
			}
		}
	}
	check(s)
	// Appends continue after compact, and everything survives a reopen.
	if _, err := s.Append(testSnap("identify", simclock.Epoch.Add(100*time.Hour), "post-compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer s2.Close()
	if got := s2.Count(); got != len(payloads)+1 {
		t.Fatalf("Count after reopen = %d, want %d", got, len(payloads)+1)
	}
	if _, body, err := s2.Get("latest"); err != nil || string(body) != `{"payload":"post-compact"}` {
		t.Fatalf("Get(latest) after reopen = %s, %v", body, err)
	}
}

// TestConcurrentAppendList exercises the store under the race detector:
// writers appending distinct snapshots while readers List and Get.
func TestConcurrentAppendList(t *testing.T) {
	s, err := Open(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				snap := testSnap("identify", simclock.Epoch.Add(time.Duration(i)*time.Minute), fmt.Sprintf("w%d-%d", w, i))
				if _, err := s.Append(snap); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if got := s.Count(); got != writers*perWriter {
				t.Fatalf("Count = %d, want %d", got, writers*perWriter)
			}
			if got := len(s.List(Query{Kind: "identify"})); got != writers*perWriter {
				t.Fatalf("List = %d, want %d", got, writers*perWriter)
			}
			return
		default:
			metas := s.List(Query{})
			if len(metas) > 0 {
				if _, _, err := s.Get(fmt.Sprint(metas[len(metas)-1].Seq)); err != nil {
					t.Fatalf("Get during concurrent appends: %v", err)
				}
			}
		}
	}
}

func TestMemoryStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, err := s.Append(testSnap("identify", simclock.Epoch, "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if _, body, err := s.Get(m.ID); err != nil || string(body) != `{"payload":"mem"}` {
		t.Fatalf("memory Get = %s, %v", body, err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("memory Compact: %v", err)
	}
}

func TestConfigHashStable(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1 := ConfigHash(cfg{1, "x"})
	h2 := ConfigHash(cfg{1, "x"})
	h3 := ConfigHash(cfg{2, "x"})
	if h1 != h2 {
		t.Fatalf("ConfigHash not deterministic: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Fatal("ConfigHash collision on differing configs")
	}
	if len(h1) != 16 {
		t.Fatalf("ConfigHash length = %d, want 16", len(h1))
	}
}

func BenchmarkAppendFsync(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := testSnap("identify", simclock.Epoch.Add(time.Duration(i)*time.Minute), fmt.Sprintf("b%d", i))
		if _, err := s.Append(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGetSelectorTable drives every selector form through one store:
// sequence numbers, content-ID prefixes (including an ambiguous one),
// "latest", and "latest:<kind>" across all three snapshot kinds.
func TestGetSelectorTable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Append rotating kinds until two content IDs share a first hex
	// character, so the ambiguous-prefix case exists deterministically.
	kinds := []string{"identify", "table4", "discovery"}
	var metas []Meta
	byFirst := make(map[byte]int)
	ambiguous := ""
	for i := 0; ambiguous == "" || len(metas) < 6; i++ {
		if i >= 64 {
			t.Fatal("no ID prefix collision within 64 snapshots")
		}
		snap := testSnap(kinds[i%len(kinds)], simclock.Epoch.Add(time.Duration(i)*time.Hour), fmt.Sprintf("sel%d", i))
		m, err := s.Append(snap)
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, m)
		byFirst[m.ID[0]]++
		if ambiguous == "" && byFirst[m.ID[0]] > 1 {
			ambiguous = string(m.ID[0])
		}
	}
	newestOf := func(kind string) uint64 {
		for i := len(metas) - 1; i >= 0; i-- {
			if metas[i].Kind == kind {
				return metas[i].Seq
			}
		}
		t.Fatalf("no %q snapshot appended", kind)
		return 0
	}

	tests := []struct {
		name     string
		selector string
		wantSeq  uint64
		wantErr  error
	}{
		{name: "sequence number", selector: "3", wantSeq: 3},
		{name: "full content ID", selector: metas[1].ID, wantSeq: metas[1].Seq},
		{name: "unique ID prefix", selector: metas[1].ID[:12], wantSeq: metas[1].Seq},
		{name: "ambiguous ID prefix", selector: ambiguous, wantErr: ErrAmbiguous},
		{name: "latest", selector: "latest", wantSeq: metas[len(metas)-1].Seq},
		{name: "latest identify", selector: "latest:identify", wantSeq: newestOf("identify")},
		{name: "latest table4", selector: "latest:table4", wantSeq: newestOf("table4")},
		{name: "latest discovery", selector: "latest:discovery", wantSeq: newestOf("discovery")},
		{name: "latest of absent kind", selector: "latest:nosuch", wantErr: ErrNotFound},
		{name: "unknown sequence", selector: "9999", wantErr: ErrNotFound},
		{name: "empty selector", selector: "", wantErr: ErrNotFound},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, _, err := s.Get(tc.selector)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Get(%q) err = %v, want %v", tc.selector, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Get(%q): %v", tc.selector, err)
			}
			if m.Seq != tc.wantSeq {
				t.Fatalf("Get(%q).Seq = %d, want %d", tc.selector, m.Seq, tc.wantSeq)
			}
		})
	}
}
