package urllist

import (
	"fmt"
	"strings"

	"filtermap/internal/httpwire"
)

// BenignImagePath is the path testers fetch on adult-image hosts to avoid
// exposure to the offensive content (§4.6: "we had them access a benign
// image file located on the host"). Blocking is at hostname granularity,
// so the shield does not change results.
const BenignImagePath = "/benign.png"

// Handler returns the origin-server handler for a domain with the given
// profile. Every researcher test domain and research-list site in the
// simulated world serves through this.
func Handler(p Profile) httpwire.Handler {
	switch p.Kind {
	case GlypeProxy:
		return httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
			return glypePage(p.Domain, req)
		})
	case AdultImage:
		return httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
			return adultImageSite(p.Domain, req)
		})
	case ListContent:
		return httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
			return listContentPage(p, req)
		})
	default:
		return httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
			return benignPage(p, req)
		})
	}
}

// linkSection renders a profile's outbound hyperlinks (the linked
// synthetic web the discovery crawler walks). Empty Links render nothing,
// so unlinked pages keep their original bytes.
func linkSection(p Profile) string {
	if len(p.Links) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\n<h2>Related resources</h2>\n<ul>\n")
	for _, u := range p.Links {
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`+"\n", u, u)
	}
	b.WriteString("</ul>")
	return b.String()
}

// keywordSection renders a page's content keywords, the tokens discovery
// scoring keys on.
func keywordSection(category string) string {
	kws := CategoryKeywords(category)
	if len(kws) == 0 {
		return ""
	}
	return fmt.Sprintf("\n<p class=\"keywords\">keywords: %s</p>", strings.Join(kws, ", "))
}

func htmlResp(status int, title, body string) *httpwire.Response {
	page := fmt.Sprintf("<!DOCTYPE html>\n<html>\n<head>\n<title>%s</title>\n</head>\n<body>\n%s\n</body>\n</html>\n", title, body)
	return httpwire.NewResponse(status,
		httpwire.NewHeader("Content-Type", "text/html; charset=utf-8"),
		[]byte(page))
}

// glypePage renders the Glype proxy script's index page: a URL entry form
// and a /browse.php relay, the content signature a proxy-category
// classifier keys on.
func glypePage(domain string, req *httpwire.Request) *httpwire.Response {
	switch {
	case req.Path() == "/" || req.Path() == "/index.php":
		body := fmt.Sprintf(`<div id="glype">
<h1>Web Proxy</h1>
<p>Browse the web anonymously through %s.</p>
<form action="/browse.php" method="get">
<input type="text" name="u" size="60" value="http://">
<input type="submit" value="Go">
</form>
<p class="footer">Powered by Glype&reg; proxy script.</p>
</div>`, domain)
		return htmlResp(200, "Glype Proxy - "+domain, body)
	case strings.HasPrefix(req.Path(), "/browse.php"):
		target := req.URL.Query().Get("u")
		body := fmt.Sprintf(`<p>Glype relay placeholder for %s.</p>
<p class="footer">Powered by Glype&reg; proxy script.</p>`, target)
		return htmlResp(200, "Glype Proxy - browsing", body)
	default:
		return htmlResp(404, "Not Found", "<p>No such page.</p>")
	}
}

// adultImageSite renders the Saudi-experiment host: an index page
// referencing an adult image (placeholder bytes only) plus the benign
// image testers actually fetch.
func adultImageSite(domain string, req *httpwire.Request) *httpwire.Response {
	switch req.Path() {
	case "/":
		body := fmt.Sprintf(`<h1>%s</h1>
<p>[adult-image-content-placeholder]</p>
<img src="/image.jpg" alt="adult content placeholder">`, domain)
		return htmlResp(200, domain, body)
	case "/image.jpg":
		return httpwire.NewResponse(200,
			httpwire.NewHeader("Content-Type", "image/jpeg"),
			[]byte("\xff\xd8\xff\xe0ADULT-PLACEHOLDER-JPEG\xff\xd9"))
	case BenignImagePath:
		return httpwire.NewResponse(200,
			httpwire.NewHeader("Content-Type", "image/png"),
			[]byte("\x89PNG\r\n\x1a\nBENIGN-PLACEHOLDER-PNG"))
	default:
		return htmlResp(404, "Not Found", "<p>No such page.</p>")
	}
}

func listContentPage(p Profile, req *httpwire.Request) *httpwire.Response {
	cat, _ := CategoryByCode(p.ResearchCategory)
	name := cat.Name
	if name == "" {
		name = p.ResearchCategory
	}
	body := fmt.Sprintf(`<h1>%s</h1>
<p>Independent content site — category: %s (%s theme).</p>
<p>This page stands in for real-world content protected by Article 19 of
the Universal Declaration of Human Rights.</p>`, p.Domain, name, cat.Theme)
	body += keywordSection(p.ResearchCategory)
	body += linkSection(p)
	return htmlResp(200, p.Domain+" - "+name, body)
}

func benignPage(p Profile, req *httpwire.Request) *httpwire.Response {
	body := fmt.Sprintf(`<h1>Welcome to %s</h1>
<p>Nothing interesting here: weather, recipes, and photographs of clouds.</p>`, p.Domain)
	body += linkSection(p)
	return htmlResp(200, p.Domain, body)
}
