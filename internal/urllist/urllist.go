// Package urllist provides the URL corpora of the study:
//
//   - the researcher-controlled test domains of §4 — "two random
//     (non-profane) words registered with the .info top-level domain
//     (e.g., starwasher.info)" carrying the Glype proxy script, or an
//     adult image for the Saudi pornography experiment (§4.3),
//   - the ONI testing lists of §5: a constant "global list" of
//     internationally relevant content and per-country "local lists",
//     with every URL assigned to one of 40 content categories under four
//     themes (political, social, Internet tools, conflict/security),
//   - a content directory describing what each simulated domain hosts, so
//     vendor classifiers can categorize by content like the real
//     classification pipelines do.
//
// All generation is deterministic from explicit seeds so campaigns and
// tables replay identically.
package urllist

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Kind describes what a simulated site hosts.
type Kind int

const (
	// Benign sites host innocuous placeholder content.
	Benign Kind = iota
	// GlypeProxy sites host the Glype web-proxy script (§4.3).
	GlypeProxy
	// AdultImage sites host one adult image plus a benign image used to
	// shield testers (§4.6).
	AdultImage
	// ListContent sites host the content of a research-list entry; the
	// research category travels in Profile.ResearchCategory.
	ListContent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Benign:
		return "benign"
	case GlypeProxy:
		return "glype-proxy"
	case AdultImage:
		return "adult-image"
	case ListContent:
		return "list-content"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Profile describes one domain's content.
type Profile struct {
	Domain string
	Kind   Kind
	// ResearchCategory is the ONI category code for ListContent sites.
	ResearchCategory string
	// Links are outbound hyperlink URLs the domain's pages carry, forming
	// the linked synthetic web the discovery crawler walks (see web.go).
	Links []string
}

// Directory maps domains to content profiles. It is the ground truth that
// vendor content classifiers consult. Safe for concurrent use.
type Directory struct {
	mu       sync.RWMutex
	profiles map[string]Profile
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{profiles: make(map[string]Profile)}
}

// Add registers a profile (keyed by lowercase domain).
func (d *Directory) Add(p Profile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p.Domain = strings.ToLower(p.Domain)
	d.profiles[p.Domain] = p
}

// Lookup returns the profile for a domain.
func (d *Directory) Lookup(domain string) (Profile, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.profiles[strings.ToLower(domain)]
	return p, ok
}

// Domains returns all registered domains, sorted.
func (d *Directory) Domains() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.profiles))
	for dom := range d.profiles {
		out = append(out, dom)
	}
	sort.Strings(out)
	return out
}

// Word lists for test-domain generation: ordinary, non-profane English
// words, in the spirit of "starwasher.info".
var (
	genWordsA = []string{
		"star", "moon", "cloud", "river", "amber", "cedar", "copper", "dawn",
		"ember", "frost", "garden", "harbor", "island", "jade", "kite",
		"lantern", "meadow", "north", "ocean", "pearl", "quiet", "rain",
		"silver", "thunder", "umber", "violet", "willow", "yellow", "zephyr",
		"maple", "bright", "gentle", "swift", "calm", "golden",
	}
	genWordsB = []string{
		"washer", "runner", "keeper", "finder", "maker", "walker", "singer",
		"reader", "writer", "dreamer", "planter", "builder", "weaver",
		"painter", "sailor", "baker", "farmer", "fisher", "gardener",
		"hunter", "jumper", "dancer", "drifter", "wanderer", "watcher",
		"teller", "seeker", "turner", "carver", "catcher",
	}
)

// Generator produces deterministic researcher test domains.
type Generator struct {
	rng  *rand.Rand
	used map[string]bool
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), used: make(map[string]bool)}
}

// Domain returns one fresh two-word .info domain.
func (g *Generator) Domain() string {
	for {
		a := genWordsA[g.rng.Intn(len(genWordsA))]
		b := genWordsB[g.rng.Intn(len(genWordsB))]
		d := a + b + ".info"
		if !g.used[d] {
			g.used[d] = true
			return d
		}
	}
}

// Domains returns n fresh domains.
func (g *Generator) Domains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Domain()
	}
	return out
}

// SyntheticDomain is the pure-function counterpart of Generator for
// lazily-generated worlds: it returns the deterministic two-word
// .info domain for index i under seed, derivable without generating
// domains 0..i-1 (Generator must walk its RNG sequentially, which a
// lazy world materializing hosts in arbitrary order cannot do).
// Unlike Generator it does not guarantee uniqueness across indices;
// collisions are fine for the banner/decoy text it seasons.
func SyntheticDomain(seed uint64, i int) string {
	x := seed ^ uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	a := genWordsA[x%uint64(len(genWordsA))]
	b := genWordsB[(x>>32)%uint64(len(genWordsB))]
	return a + b + ".info"
}

// Themes of the ONI category scheme (§5).
const (
	ThemePolitical = "political"
	ThemeSocial    = "social"
	ThemeTools     = "internet-tools"
	ThemeConflict  = "conflict-security"
)

// ResearchCategory is one of the 40 content categories of §5.
type ResearchCategory struct {
	Code  string
	Name  string
	Theme string
}

// Table-4 research category codes (the six columns of Table 4).
const (
	CatMediaFreedom       = "media-freedom"
	CatHumanRights        = "human-rights"
	CatPoliticalReform    = "political-reform"
	CatLGBT               = "lgbt"
	CatReligiousCriticism = "religious-criticism"
	CatMinorityRights     = "minority-groups-religions"
)

// Categories returns the 40-category scheme: 10 categories per theme. The
// paper names the scheme but not every member; the set here covers every
// category the paper references (the Table 4 columns, "gambling",
// "human rights") and fills the remainder with ONI-style categories.
func Categories() []ResearchCategory {
	return []ResearchCategory{
		// Political.
		{CatHumanRights, "Human Rights", ThemePolitical},
		{CatPoliticalReform, "Political Reform", ThemePolitical},
		{"opposition-parties", "Opposition Parties", ThemePolitical},
		{CatMediaFreedom, "Media Freedom / Independent Media", ThemePolitical},
		{"government-criticism", "Criticism of Government", ThemePolitical},
		{"foreign-relations", "Foreign Relations", ThemePolitical},
		{"womens-rights", "Women's Rights", ThemePolitical},
		{CatMinorityRights, "Minority Groups and Religions", ThemePolitical},
		{"political-satire", "Political Satire", ThemePolitical},
		{"elections", "Elections", ThemePolitical},
		// Social.
		{"pornography", "Pornography", ThemeSocial},
		{"gambling", "Gambling", ThemeSocial},
		{"alcohol-drugs", "Alcohol and Drugs", ThemeSocial},
		{CatLGBT, "Gay, Lesbian, Bisexual and Transgender", ThemeSocial},
		{"dating", "Dating", ThemeSocial},
		{"sex-education", "Sex Education", ThemeSocial},
		{CatReligiousCriticism, "Religious Criticism / Discussion", ThemeSocial},
		{"minority-faiths", "Minority Faiths", ThemeSocial},
		{"entertainment", "Entertainment", ThemeSocial},
		{"public-health", "Public Health", ThemeSocial},
		// Internet tools.
		{"anonymizers", "Anonymizers", ThemeTools},
		{"proxy-tools", "Web Proxies", ThemeTools},
		{"vpn", "VPN Services", ThemeTools},
		{"translation", "Translation Tools", ThemeTools},
		{"free-email", "Free Email", ThemeTools},
		{"search-engines", "Search Engines", ThemeTools},
		{"hosting", "Hosting and Blogging Platforms", ThemeTools},
		{"p2p", "Peer-to-Peer File Sharing", ThemeTools},
		{"voip", "Voice over IP", ThemeTools},
		{"circumvention-info", "Circumvention Information", ThemeTools},
		// Conflict and security.
		{"militant-groups", "Militant Groups", ThemeConflict},
		{"extremism", "Extremism", ThemeConflict},
		{"separatists", "Separatist Movements", ThemeConflict},
		{"conflict-news", "Conflict Reporting", ThemeConflict},
		{"weapons", "Weapons", ThemeConflict},
		{"hacking", "Hacking Tools", ThemeConflict},
		{"terrorism-analysis", "Terrorism Commentary", ThemeConflict},
		{"border-disputes", "Border Disputes", ThemeConflict},
		{"armed-opposition", "Armed Opposition", ThemeConflict},
		{"security-analysis", "Security Analysis", ThemeConflict},
	}
}

// CategoryByCode returns the research category with the given code.
func CategoryByCode(code string) (ResearchCategory, bool) {
	for _, c := range Categories() {
		if c.Code == code {
			return c, true
		}
	}
	return ResearchCategory{}, false
}

// Entry is one URL on a testing list.
type Entry struct {
	URL      string
	Domain   string
	Category string // research category code
}

// List is a named URL testing list.
type List struct {
	Name    string
	Entries []Entry
}

// URLs returns the list's URLs in order.
func (l *List) URLs() []string {
	out := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.URL
	}
	return out
}

// ByCategory groups entries by research category code.
func (l *List) ByCategory() map[string][]Entry {
	out := make(map[string][]Entry)
	for _, e := range l.Entries {
		out[e.Category] = append(out[e.Category], e)
	}
	return out
}

func entry(domain, category string) Entry {
	return Entry{URL: "http://" + domain + "/", Domain: domain, Category: category}
}

// GlobalList returns the internationally relevant testing list, constant
// for every country (§5): a representative site per research category.
func GlobalList() List {
	var entries []Entry
	for _, c := range Categories() {
		entries = append(entries, entry("global-"+c.Code+".org", c.Code))
	}
	// Categories central to the paper's findings get additional
	// well-known-site stand-ins.
	entries = append(entries,
		entry("worldpressherald.org", CatMediaFreedom),
		entry("rightswatch-intl.org", CatHumanRights),
		entry("rainbowalliance.org", CatLGBT),
		entry("securelyproxy.net", "proxy-tools"),
		entry("openanonymizer.net", "anonymizers"),
	)
	return List{Name: "global", Entries: entries}
}

// LocalList returns the locally relevant list for a country (§5: "designed
// for each country by regional experts and ... unique for each country").
// Unknown countries get an empty list.
func LocalList(country string) List {
	country = strings.ToUpper(country)
	mk := func(domains map[string]string) List {
		keys := make([]string, 0, len(domains))
		for d := range domains {
			keys = append(keys, d)
		}
		sort.Strings(keys)
		var entries []Entry
		for _, d := range keys {
			entries = append(entries, entry(d, domains[d]))
		}
		return List{Name: "local-" + strings.ToLower(country), Entries: entries}
	}
	switch country {
	case "AE":
		return mk(map[string]string{
			"uae-reform-now.org":      CatPoliticalReform,
			"emirates-monitor.org":    CatMediaFreedom,
			"gulf-lgbt-network.org":   CatLGBT,
			"islam-debate-forum.org":  CatReligiousCriticism,
			"uaedetaineewatch.org":    CatHumanRights,
			"shia-community-gulf.org": CatMinorityRights,
		})
	case "QA":
		return mk(map[string]string{
			"qatar-voices.org":        CatPoliticalReform,
			"doha-free-press.org":     CatMediaFreedom,
			"qatari-lgbt-forum.org":   CatLGBT,
			"gulf-religion-talk.org":  CatReligiousCriticism,
			"migrant-rights-doha.org": CatHumanRights,
		})
	case "SA":
		return mk(map[string]string{
			"saudi-reform-front.org": CatPoliticalReform,
			"riyadh-uncensored.org":  CatMediaFreedom,
			"saudi-lgbt-voices.org":  CatLGBT,
			"quran-questions.org":    CatReligiousCriticism,
			"shia-rights-ksa.org":    CatMinorityRights,
			"saudi-rights-watch.org": CatHumanRights,
		})
	case "YE":
		return mk(map[string]string{
			"yemen-change-now.org":    CatPoliticalReform,
			"sanaa-independent.org":   CatMediaFreedom,
			"yemeni-rights-forum.org": CatHumanRights,
			"aden-free-voices.org":    CatLGBT,
			"southern-movement.org":   "separatists",
		})
	default:
		return List{Name: "local-" + strings.ToLower(country)}
	}
}
