package urllist

import (
	"strings"
	"testing"
	"testing/quick"

	"filtermap/internal/httpwire"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(42)
	g2 := NewGenerator(42)
	for i := 0; i < 20; i++ {
		a, b := g1.Domain(), g2.Domain()
		if a != b {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a, b)
		}
	}
}

func TestGeneratorDifferentSeedsDiffer(t *testing.T) {
	a := NewGenerator(1).Domains(10)
	b := NewGenerator(2).Domains(10)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGeneratorNoDuplicates(t *testing.T) {
	g := NewGenerator(7)
	seen := make(map[string]bool)
	for _, d := range g.Domains(200) {
		if seen[d] {
			t.Fatalf("duplicate domain %q", d)
		}
		seen[d] = true
	}
}

func TestGeneratorDomainShape(t *testing.T) {
	// §4.3: "two random (non-profane) words registered with the .info
	// top-level domain (e.g., starwasher.info)".
	g := NewGenerator(99)
	f := func(n uint8) bool {
		d := g.Domain()
		if !strings.HasSuffix(d, ".info") {
			return false
		}
		base := strings.TrimSuffix(d, ".info")
		return base != "" && !strings.Contains(base, ".") && strings.ToLower(base) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCategoriesSchemeShape(t *testing.T) {
	cats := Categories()
	if len(cats) != 40 {
		t.Fatalf("scheme has %d categories, want 40 (§5)", len(cats))
	}
	themes := map[string]int{}
	codes := map[string]bool{}
	for _, c := range cats {
		if codes[c.Code] {
			t.Fatalf("duplicate category code %q", c.Code)
		}
		codes[c.Code] = true
		themes[c.Theme]++
		if c.Name == "" {
			t.Fatalf("category %q has no display name", c.Code)
		}
	}
	if len(themes) != 4 {
		t.Fatalf("scheme has %d themes, want 4 (§5)", len(themes))
	}
	for theme, n := range themes {
		if n != 10 {
			t.Errorf("theme %q has %d categories, want 10", theme, n)
		}
	}
}

func TestCategoriesIncludeTable4Columns(t *testing.T) {
	for _, code := range []string{
		CatMediaFreedom, CatHumanRights, CatPoliticalReform,
		CatLGBT, CatReligiousCriticism, CatMinorityRights,
	} {
		if _, ok := CategoryByCode(code); !ok {
			t.Errorf("Table 4 column %q missing from scheme", code)
		}
	}
	if _, ok := CategoryByCode("nonexistent"); ok {
		t.Error("found nonexistent category")
	}
}

func TestGlobalListCoversEveryCategory(t *testing.T) {
	list := GlobalList()
	byCat := list.ByCategory()
	for _, c := range Categories() {
		if len(byCat[c.Code]) == 0 {
			t.Errorf("global list has no entry for category %q", c.Code)
		}
	}
	if len(list.URLs()) != len(list.Entries) {
		t.Fatal("URLs() length mismatch")
	}
	for _, e := range list.Entries {
		if !strings.HasPrefix(e.URL, "http://") || e.Domain == "" {
			t.Errorf("malformed entry %+v", e)
		}
	}
}

func TestLocalListsPerCountry(t *testing.T) {
	for _, cc := range []string{"AE", "QA", "SA", "YE"} {
		list := LocalList(cc)
		if len(list.Entries) == 0 {
			t.Errorf("local list for %s is empty", cc)
		}
		if list.Name != "local-"+strings.ToLower(cc) {
			t.Errorf("list name = %q", list.Name)
		}
	}
	if len(LocalList("ZZ").Entries) != 0 {
		t.Error("unknown country returned entries")
	}
	// Lists are unique per country (§5).
	ae := LocalList("AE")
	qa := LocalList("QA")
	for _, a := range ae.Entries {
		for _, q := range qa.Entries {
			if a.Domain == q.Domain {
				t.Errorf("domain %q shared between AE and QA local lists", a.Domain)
			}
		}
	}
}

func TestLocalListDeterministicOrder(t *testing.T) {
	a := LocalList("YE")
	b := LocalList("YE")
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("local list order not deterministic")
		}
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	d.Add(Profile{Domain: "Starwasher.INFO", Kind: GlypeProxy})
	p, ok := d.Lookup("starwasher.info")
	if !ok || p.Kind != GlypeProxy {
		t.Fatalf("Lookup = %+v, %v", p, ok)
	}
	if _, ok := d.Lookup("other.info"); ok {
		t.Fatal("found unregistered domain")
	}
	if got := d.Domains(); len(got) != 1 || got[0] != "starwasher.info" {
		t.Fatalf("Domains = %v", got)
	}
}

func request(t *testing.T, rawurl string) *httpwire.Request {
	t.Helper()
	req, err := httpwire.NewRequest("GET", rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestGlypeHandlerServesProxyPage(t *testing.T) {
	h := Handler(Profile{Domain: "starwasher.info", Kind: GlypeProxy})
	resp := h.Handle(request(t, "http://starwasher.info/"))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "Glype") || !strings.Contains(body, "/browse.php") {
		t.Fatalf("glype page missing markers: %s", body)
	}
	// The relay endpoint answers too.
	resp = h.Handle(request(t, "http://starwasher.info/browse.php?u=http://x/"))
	if resp.StatusCode != 200 {
		t.Fatalf("browse.php status = %d", resp.StatusCode)
	}
	// Unknown paths 404.
	if resp := h.Handle(request(t, "http://starwasher.info/nope")); resp.StatusCode != 404 {
		t.Fatalf("unknown path status = %d", resp.StatusCode)
	}
}

func TestAdultImageHandlerShieldsTesters(t *testing.T) {
	h := Handler(Profile{Domain: "amberrunner.info", Kind: AdultImage})
	// The benign image is a separate, innocuous resource (§4.6).
	resp := h.Handle(request(t, "http://amberrunner.info"+BenignImagePath))
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "image/png" {
		t.Fatalf("benign image = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if strings.Contains(string(resp.Body), "ADULT") {
		t.Fatal("benign image contains adult marker")
	}
	// The index references the adult content.
	resp = h.Handle(request(t, "http://amberrunner.info/"))
	if !strings.Contains(string(resp.Body), "adult-image-content-placeholder") {
		t.Fatal("index missing adult placeholder")
	}
}

func TestListContentHandler(t *testing.T) {
	h := Handler(Profile{Domain: "global-lgbt.org", Kind: ListContent, ResearchCategory: CatLGBT})
	resp := h.Handle(request(t, "http://global-lgbt.org/"))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(resp.Body), "Article 19") {
		t.Fatal("list content page missing rights reference")
	}
}

func TestBenignHandler(t *testing.T) {
	h := Handler(Profile{Domain: "plain.example", Kind: Benign})
	resp := h.Handle(request(t, "http://plain.example/"))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Benign: "benign", GlypeProxy: "glype-proxy",
		AdultImage: "adult-image", ListContent: "list-content",
		Kind(9): "Kind(9)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
