package urllist

import "sort"

// This file defines the linked layer of the simulated web: hyperlinks on
// curated-list pages, hub ("link directory") sites, and hidden
// category-bearing sites that appear on no testing list. Crawling from
// the curated seeds is the only way to reach the hidden sites, which is
// exactly the gap the discovery crawler (internal/discovery) exists to
// close: curated lists can never enumerate everything a filter blocks.
//
// Everything here is a fixed literal, so the web graph is identical in
// every build of the world and discovery runs are deterministic.

// ThemeDiscovered is the synthetic theme crawl-discovered URLs register
// under. It sits beside the four ONI themes of §5 without being part of
// the curated category scheme.
const ThemeDiscovered = "discovered"

// ListDiscovered names the synthetic testing list assembled from
// crawl-discovered blocked URLs (the list characterization runs as a
// third source next to "global" and "local-<cc>").
const ListDiscovered = "discovered"

// SeedLinks maps curated-list domains to the outbound links their pages
// carry. These are the crawl frontier's entry points into the linked web.
func SeedLinks() map[string][]string {
	return map[string][]string{
		"global-proxy-tools.org":      {"http://mideast-link-directory.org/", "http://mirror-firewall-bypass.net/"},
		"global-anonymizers.org":      {"http://hidden-tunnel-tools.net/"},
		"securelyproxy.net":           {"http://mideast-link-directory.org/"},
		"global-media-freedom.org":    {"http://civil-society-webring.org/", "http://gulf-press-mirror.org/"},
		"worldpressherald.org":        {"http://mideast-link-directory.org/"},
		"global-human-rights.org":     {"http://civil-society-webring.org/"},
		"rightswatch-intl.org":        {"http://detained-bloggers-list.org/"},
		"global-political-reform.org": {"http://mideast-link-directory.org/"},
		"global-lgbt.org":             {"http://civil-society-webring.org/"},
	}
}

// HiddenSites returns the sites of the linked web that appear on no
// curated testing list: two benign hub directories plus the hidden
// category-bearing sites only reachable by following links. The order is
// fixed (hosting assigns sequential IPs from it).
func HiddenSites() []Profile {
	return []Profile{
		// Hub directories: benign aggregator pages that deep-link the
		// hidden content sites. Reachable everywhere, so a crawler can
		// always expand through them.
		{Domain: "mideast-link-directory.org", Kind: Benign, Links: []string{
			"http://mirror-firewall-bypass.net/",
			"http://unblock-gateway.net/",
			"http://hidden-tunnel-tools.net/",
			"http://gulf-press-mirror.org/",
			"http://arab-spring-archive.org/",
			"http://free-faith-forum.org/",
		}},
		{Domain: "civil-society-webring.org", Kind: Benign, Links: []string{
			"http://gulf-press-mirror.org/",
			"http://exiled-editors.org/",
			"http://gulf-pride-underground.org/",
			"http://detained-bloggers-list.org/",
			"http://privacy-relay-network.net/",
		}},
		// Hidden content sites. Filters that block the category block the
		// site; none of them is on a curated list.
		{Domain: "mirror-firewall-bypass.net", Kind: ListContent, ResearchCategory: "proxy-tools", Links: []string{
			"http://unblock-gateway.net/",
			"http://privacy-relay-network.net/",
		}},
		{Domain: "unblock-gateway.net", Kind: ListContent, ResearchCategory: "proxy-tools"},
		{Domain: "hidden-tunnel-tools.net", Kind: ListContent, ResearchCategory: "anonymizers", Links: []string{
			"http://privacy-relay-network.net/",
		}},
		{Domain: "privacy-relay-network.net", Kind: ListContent, ResearchCategory: "anonymizers"},
		{Domain: "gulf-press-mirror.org", Kind: ListContent, ResearchCategory: CatMediaFreedom, Links: []string{
			"http://exiled-editors.org/",
		}},
		{Domain: "exiled-editors.org", Kind: ListContent, ResearchCategory: CatMediaFreedom},
		{Domain: "arab-spring-archive.org", Kind: ListContent, ResearchCategory: CatPoliticalReform},
		{Domain: "gulf-pride-underground.org", Kind: ListContent, ResearchCategory: CatLGBT},
		{Domain: "free-faith-forum.org", Kind: ListContent, ResearchCategory: CatReligiousCriticism},
		{Domain: "detained-bloggers-list.org", Kind: ListContent, ResearchCategory: CatHumanRights},
	}
}

// CategoryKeywords returns the content keywords a category's pages carry
// (lowercase tokens from the category name plus the code's words). The
// discovery crawler scores candidate links by these tokens.
func CategoryKeywords(code string) []string {
	set := make(map[string]bool)
	add := func(s string) {
		for _, tok := range tokenize(s) {
			set[tok] = true
		}
	}
	add(code)
	if cat, ok := CategoryByCode(code); ok {
		add(cat.Name)
	}
	out := make([]string, 0, len(set))
	for tok := range set {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// tokenize splits a string into lowercase alphanumeric tokens, dropping
// short connective words.
func tokenize(s string) []string {
	var out []string
	var cur []rune
	flush := func() {
		if len(cur) >= 3 {
			tok := string(cur)
			if tok != "and" && tok != "the" && tok != "for" {
				out = append(out, tok)
			}
		}
		cur = cur[:0]
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur = append(cur, r)
		case r >= 'A' && r <= 'Z':
			cur = append(cur, r+('a'-'A'))
		default:
			flush()
		}
	}
	flush()
	return out
}

// DiscoveredList assembles the synthetic "discovered" testing list from
// entries found by crawling: deduplicated by URL and sorted, so the list
// is deterministic regardless of discovery order.
func DiscoveredList(entries []Entry) List {
	seen := make(map[string]bool, len(entries))
	var out []Entry
	for _, e := range entries {
		if seen[e.URL] {
			continue
		}
		seen[e.URL] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return List{Name: ListDiscovered, Entries: out}
}
