// Package version exposes one build-version string for every fm*
// binary and the fmserve health endpoint, derived from the module build
// info the Go toolchain embeds (no ldflags required).
package version

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
)

// String returns the build's version: the main module version when the
// binary was built from a tagged module, else the VCS revision (short),
// else "devel".
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	var dirty bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// Flag registers -version on fs. Call the returned function after
// parsing: it prints "<name> <version>" and exits 0 when the flag was
// set.
func Flag(fs *flag.FlagSet, name string) func() {
	show := fs.Bool("version", false, "print version and exit")
	return func() {
		if *show {
			fmt.Printf("%s %s\n", name, String())
			os.Exit(0)
		}
	}
}
