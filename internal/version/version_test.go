package version

import (
	"flag"
	"testing"
)

func TestStringNonEmpty(t *testing.T) {
	if String() == "" {
		t.Fatal("version.String returned empty")
	}
}

func TestFlagRegistersVersion(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	check := Flag(fs, "x")
	if fs.Lookup("version") == nil {
		t.Fatal("-version not registered")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Flag unset: the check must return instead of exiting the process.
	check()
}
