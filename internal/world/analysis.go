package world

import (
	"context"
	"fmt"
	"time"

	"filtermap/internal/characterize"
	"filtermap/internal/identify"
	"filtermap/internal/scanner"
	"filtermap/internal/urllist"
)

// IdentifyPipeline wires the full §3 pipeline against the simulated
// Internet: scan from the research vantage, validate with Table 2
// signatures, map via the geolocation database and the whois service.
// Pass a pre-built index to skip the scan stage (nil scans fresh).
func (w *World) IdentifyPipeline(ctx context.Context, index *scanner.Index) (*identify.Pipeline, error) {
	if index == nil {
		var err error
		index, err = w.Scanner().ScanNetwork(ctx)
		if err != nil {
			return nil, fmt.Errorf("world: scan: %w", err)
		}
	}
	return &identify.Pipeline{
		Index:         index,
		Fingerprinter: w.Fingerprinter(),
		GeoDB:         w.GeoDB,
		Whois:         w.WhoisClient(),
		Config:        w.Engine,
	}, nil
}

// RunIdentification performs the whole §3 pipeline and returns the
// Figure 1 report.
func (w *World) RunIdentification(ctx context.Context) (*identify.Report, error) {
	p, err := w.IdentifyPipeline(ctx, nil)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// CharacterizationTargets lists the (country, ISP, ASN) tuples §5
// characterizes — the confirmed deployments of Table 3.
func CharacterizationTargets() []struct {
	Country string
	ISP     string
	ASN     int
} {
	return []struct {
		Country string
		ISP     string
		ASN     int
	}{
		{"AE", ISPEtisalat, ASNEtisalat},
		{"AE", ISPDu, ASNDu},
		{"QA", ISPOoredoo, ASNOoredoo},
		{"YE", ISPYemenNet, ASNYemenNet},
	}
}

// CharacterizationRuns builds one characterize.Run per target.
func (w *World) CharacterizationRuns() ([]characterize.Run, error) {
	var runs []characterize.Run
	for _, t := range CharacterizationTargets() {
		client, err := w.MeasureClient(t.ISP)
		if err != nil {
			return nil, err
		}
		runs = append(runs, characterize.Run{
			Country: t.Country,
			ISP:     t.ISP,
			ASN:     t.ASN,
			Global:  urllist.GlobalList(),
			Local:   urllist.LocalList(t.Country),
			Client:  client,
		})
	}
	return runs, nil
}

// StageCharacterize names the per-country §5 stage in the engine.Stats
// registry; StageCampaign names the Table 3 case-study stage.
const (
	StageCharacterize = "characterize"
	StageCampaign     = "campaign"
)

// RunCharacterization runs §5 for every target in parallel through the
// shared pool and returns the reports in target order (Table 4's input).
// Country runs are independent — distinct field vantages, shared
// read-only policy state, no clock advancement — so parallelism does not
// change any verdict. Callers should position the clock at an hour when
// the YemenNet license permits filtering; EnsureYemenFilteringActive does
// that.
func (w *World) RunCharacterization(ctx context.Context) ([]*characterize.Report, error) {
	return w.RunCharacterizationFor(ctx, nil)
}

// RunCharacterizationFor runs §5 for the named ISPs only (nil or empty
// means every target). Unknown names are ignored; callers wanting
// validation should check against CharacterizationTargets first.
func (w *World) RunCharacterizationFor(ctx context.Context, isps []string) ([]*characterize.Report, error) {
	return w.RunCharacterizationWithExtra(ctx, isps)
}

// EnsureYemenFilteringActive advances the clock (up to 24h) to an hour
// when YemenNet's license permits filtering, so characterization is not
// confounded by the fail-open window.
func (w *World) EnsureYemenFilteringActive() {
	for i := 0; i < 24 && !w.YemenFilteringActive(w.Clock.Now()); i++ {
		w.Clock.Advance(time.Hour)
	}
}
