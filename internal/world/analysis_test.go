package world

import (
	"context"
	"sort"
	"testing"
	"time"

	"filtermap/internal/characterize"
	"filtermap/internal/confirm"
	"filtermap/internal/fingerprint"
	"filtermap/internal/measurement"
	"filtermap/internal/products/smartfilter"
	"filtermap/internal/simclock"
	"filtermap/internal/urllist"
)

// TestIdentificationFigure1 runs the full §3 pipeline over the simulated
// Internet and checks the Figure 1 product->country map.
func TestIdentificationFigure1(t *testing.T) {
	w := buildTestWorld(t, Options{})
	report, err := w.RunIdentification(context.Background())
	if err != nil {
		t.Fatalf("RunIdentification: %v", err)
	}
	pc := report.ProductCountries()

	want := map[string][]string{
		fingerprint.ProductBlueCoat:    {"AE", "AR", "CL", "FI", "IL", "LB", "PH", "QA", "SE", "SY", "TH", "TW", "US"},
		fingerprint.ProductNetsweeper:  {"AE", "QA", "US", "YE"},
		fingerprint.ProductSmartFilter: {"PK", "SA", "US"},
		fingerprint.ProductWebsense:    {"US", "YE"},
	}
	for product, countries := range want {
		got := pc[product]
		if !equalStrings(got, countries) {
			t.Errorf("%s countries = %v, want %v", product, got, countries)
		}
	}

	// Validation must have rejected the decoys.
	if report.ValidatedCount >= report.CandidateCount {
		t.Errorf("validation rejected nothing: %d candidates, %d validated",
			report.CandidateCount, report.ValidatedCount)
	}
	for _, inst := range report.Installations {
		switch inst.Hostname {
		case "techblog.example", "router.smallisp.example", "forum.netops.example":
			t.Errorf("decoy %s survived validation as %v", inst.Hostname, inst.Products)
		}
	}

	// The USAISC observation (§3.2).
	foundUSAISC := false
	for _, inst := range report.Installations {
		if inst.Hostname == "gw.usaisc.army.example" && inst.HasProduct(fingerprint.ProductBlueCoat) {
			foundUSAISC = true
			if inst.ASN != 721 {
				t.Errorf("USAISC ASN = %d, want 721", inst.ASN)
			}
		}
	}
	if !foundUSAISC {
		t.Error("Blue Coat on the USAISC address was not identified")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestCharacterizationTable4 reproduces the (reconstructed) Table 4
// matrix.
func TestCharacterizationTable4(t *testing.T) {
	w := buildTestWorld(t, Options{})
	// §5 runs within 30 days of the confirmations; exact date is not
	// material, but the Yemen license must permit filtering.
	w.Clock.AdvanceTo(simclock.Epoch.Add(8 * time.Hour))
	reports, err := w.RunCharacterization(context.Background())
	if err != nil {
		t.Fatalf("RunCharacterization: %v", err)
	}
	rows := characterize.Matrix(reports)

	type key struct {
		product string
		asn     int
	}
	want := map[key]map[string]bool{
		{"McAfee SmartFilter", ASNEtisalat}: {
			urllist.CatMediaFreedom:       true,
			urllist.CatHumanRights:        false,
			urllist.CatPoliticalReform:    true,
			urllist.CatLGBT:               true,
			urllist.CatReligiousCriticism: true,
			urllist.CatMinorityRights:     false,
		},
		{"Netsweeper", ASNYemenNet}: {
			urllist.CatMediaFreedom:       true,
			urllist.CatHumanRights:        true,
			urllist.CatPoliticalReform:    true,
			urllist.CatLGBT:               true,
			urllist.CatReligiousCriticism: false,
			urllist.CatMinorityRights:     false,
		},
		{"Netsweeper", ASNDu}: {
			urllist.CatMediaFreedom:       false,
			urllist.CatHumanRights:        false,
			urllist.CatPoliticalReform:    true,
			urllist.CatLGBT:               true,
			urllist.CatReligiousCriticism: true,
			urllist.CatMinorityRights:     true,
		},
		{"Netsweeper", ASNOoredoo}: {
			urllist.CatMediaFreedom:       false,
			urllist.CatHumanRights:        false,
			urllist.CatPoliticalReform:    false,
			urllist.CatLGBT:               true,
			urllist.CatReligiousCriticism: true,
			urllist.CatMinorityRights:     false,
		},
	}
	seen := make(map[key]bool)
	for _, row := range rows {
		k := key{row.Product, row.ASN}
		expect, ok := want[k]
		if !ok {
			continue
		}
		seen[k] = true
		for col, v := range expect {
			if row.Blocked[col] != v {
				t.Errorf("%s AS%d column %s = %v, want %v", row.Product, row.ASN, col, row.Blocked[col], v)
			}
		}
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("no Table 4 row for %s AS%d", k.product, k.asn)
		}
	}
}

// TestEvasionHiddenConsoles reproduces Table 5 row 1: with consoles
// firewalled, identification finds nothing, but confirmation still works.
func TestEvasionHiddenConsoles(t *testing.T) {
	w := buildTestWorld(t, Options{HideConsoles: true})
	ctx := context.Background()

	report, err := w.RunIdentification(ctx)
	if err != nil {
		t.Fatalf("RunIdentification: %v", err)
	}
	if got := len(report.Installations); got != 0 {
		t.Fatalf("identification found %d installations despite hidden consoles", got)
	}

	// Confirmation is identification-independent (§6): run the Bayanat
	// campaign and confirm as before.
	outcome := runPlanByKey(t, w, "smartfilter-saudi-bayanat")
	if !outcome.Confirmed || outcome.Ratio() != "5/5" {
		t.Fatalf("confirmation under hidden consoles = %s confirmed=%v, want 5/5 confirmed", outcome.Ratio(), outcome.Confirmed)
	}
}

// TestEvasionScrubbedHeaders reproduces Table 5 row 2: scrubbing headers
// defeats header/title-shaped signatures (McAfee disappears entirely)
// while structural signatures (Netsweeper's deny path, Websense's :15871
// redirect, Blue Coat's cfauth Location) survive — and confirmation still
// works either way, via unattributed field/lab divergence.
func TestEvasionScrubbedHeaders(t *testing.T) {
	w := buildTestWorld(t, Options{ScrubHeaders: true})
	ctx := context.Background()

	report, err := w.RunIdentification(ctx)
	if err != nil {
		t.Fatalf("RunIdentification: %v", err)
	}
	pc := report.ProductCountries()
	if len(pc[fingerprint.ProductSmartFilter]) != 0 {
		t.Errorf("SmartFilter still identified in %v despite scrubbing (header/title signatures should fail)", pc[fingerprint.ProductSmartFilter])
	}
	if len(pc[fingerprint.ProductNetsweeper]) == 0 {
		t.Error("Netsweeper's structural /webadmin signature should survive scrubbing")
	}

	// Confirmation still works: blocked pages are unbranded, so the
	// verdicts arrive as anomalies, and causality does the attribution.
	outcome := runPlanByKey(t, w, "smartfilter-saudi-bayanat")
	if outcome.Confirmed {
		// With branding scrubbed the block-page corpus cannot match; the
		// standard pipeline reports anomalies instead. Re-check with
		// anomaly counting below.
		t.Log("outcome confirmed even with scrubbed headers (classifier matched something)")
	}
	anomalies := 0
	for _, round := range outcome.Rounds {
		for _, r := range round {
			if r.Verdict == measurement.Anomaly {
				anomalies++
			}
		}
	}
	if outcome.BlockedSubmitted == 0 && anomalies == 0 {
		t.Fatal("scrubbed deployment produced neither blocks nor anomalies; submissions had no observable effect")
	}
}

// TestEvasionSubmissionFiltering reproduces Table 5 row 3 and the §6.2
// countermeasure: the vendor disregards lab-identified submissions, so
// the campaign fails; resubmitting via a proxy exit and webmail identity
// restores confirmation.
func TestEvasionSubmissionFiltering(t *testing.T) {
	w := buildTestWorld(t, Options{FilterSubmissions: true})

	// Attempt 1: normal lab submissions are silently disregarded.
	outcome := runPlanByKey(t, w, "smartfilter-saudi-bayanat")
	if outcome.Confirmed || outcome.BlockedSubmitted != 0 {
		t.Fatalf("filtered submissions still blocked %s", outcome.Ratio())
	}

	// Attempt 2: proxy exit + webmail identity.
	urls, err := w.ProvisionTestSites(urllist.AdultImage, 10)
	if err != nil {
		t.Fatal(err)
	}
	measure, err := w.MeasureClient(ISPBayanat)
	if err != nil {
		t.Fatal(err)
	}
	campaign := &confirm.Campaign{
		Product: smartfilter.Name, Country: "SA", ISP: ISPBayanat, ASN: ASNBayanat,
		Category: smartfilter.CatPornography, CategoryLabel: "Pornography",
		DomainURLs: urls, SubmitCount: 5, PreTest: true,
		WaitDays: 4, RetestRounds: 3,
		Submit:  w.CounterEvasionSubmitter(smartfilter.Name),
		Wait:    w.Wait,
		Measure: measure,
	}
	outcome2, err := confirm.Run(context.Background(), campaign)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome2.Confirmed || outcome2.Ratio() != "5/5" {
		t.Fatalf("counter-evasion campaign = %s confirmed=%v, want 5/5 confirmed", outcome2.Ratio(), outcome2.Confirmed)
	}
}

// runPlanByKey advances to and runs a single Table 3 plan.
func runPlanByKey(t *testing.T, w *World, key string) *confirm.Outcome {
	t.Helper()
	for _, p := range w.Table3Plans() {
		if p.Key != key {
			continue
		}
		w.Clock.AdvanceTo(p.StartAt)
		campaign, err := p.Build()
		if err != nil {
			t.Fatalf("build %s: %v", key, err)
		}
		outcome, err := confirm.Run(context.Background(), campaign)
		if err != nil {
			t.Fatalf("run %s: %v", key, err)
		}
		return outcome
	}
	t.Fatalf("no plan %q", key)
	return nil
}

// TestBenignImageShield validates §4.6: testers fetching only the benign
// image on an adult-image host still observe the block, because blocking
// is at hostname granularity.
func TestBenignImageShield(t *testing.T) {
	w := buildTestWorld(t, Options{})
	urls, err := w.ProvisionTestSites(urllist.AdultImage, 1)
	if err != nil {
		t.Fatal(err)
	}
	domain := urls[0][len("http://") : len(urls[0])-1]
	benignURL := "http://" + domain + urllist.BenignImagePath

	client, err := w.MeasureClient(ISPBayanat)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if res := client.TestURL(ctx, benignURL); res.Verdict != measurement.Accessible {
		t.Fatalf("benign image pre-block verdict = %v, want accessible", res.Verdict)
	}

	if _, err := w.SmartFilterDB.Submit(urls[0], smartfilter.CatPornography, w.Lab.Addr(), LabEmail); err != nil {
		t.Fatal(err)
	}
	w.Wait(simclock.Days(4))
	if res := client.TestURL(ctx, benignURL); res.Verdict != measurement.Blocked {
		t.Fatalf("benign image post-block verdict = %v, want blocked (hostname granularity)", res.Verdict)
	}
}

// TestCharacterizationUnderScrubbing shows §5's dependency on explicit
// block pages: with brands scrubbed, the measurement client still detects
// interference but can no longer attribute it to a product, so header-only
// vendors vanish from the Table 4 matrix while redirect-shaped vendors
// (Netsweeper's structural deny path) remain classifiable.
func TestCharacterizationUnderScrubbing(t *testing.T) {
	w := buildTestWorld(t, Options{ScrubHeaders: true})
	w.Clock.AdvanceTo(simclock.Epoch.Add(8 * time.Hour))
	ctx := context.Background()

	// Etisalat (SmartFilter block pages are pure body/header branding):
	// blocking becomes unattributable anomalies.
	uae, err := w.MeasureClient(ISPEtisalat)
	if err != nil {
		t.Fatal(err)
	}
	res := uae.TestURL(ctx, "http://global-pornography.org/")
	if res.Verdict == measurement.Accessible {
		t.Fatal("scrubbed Etisalat stopped blocking entirely")
	}
	if res.Verdict == measurement.Blocked && res.BlockMatch.Product == "McAfee SmartFilter" {
		t.Fatal("scrubbed SmartFilter block page still attributed")
	}

	// YemenNet (Netsweeper redirects to /webadmin/deny): still classified.
	ye, err := w.MeasureClient(ISPYemenNet)
	if err != nil {
		t.Fatal(err)
	}
	res = ye.TestURL(ctx, "http://global-pornography.org/")
	if res.Verdict != measurement.Blocked || res.BlockMatch.Product != "Netsweeper" {
		t.Fatalf("scrubbed Netsweeper verdict = %v via %q, want blocked via Netsweeper", res.Verdict, res.BlockMatch.Product)
	}
}

// TestScanVantagePointDependence pins the dependency the paper's §3
// inherits from its measurement position: scanning from a neutral network
// observes a service's true banner, while the same probe from inside a
// filtered ISP observes the middlebox's handiwork (injected Via headers,
// or block pages instead of content). Identification must therefore run
// from unfiltered vantage points.
func TestScanVantagePointDependence(t *testing.T) {
	w := buildTestWorld(t, Options{})
	ctx := context.Background()

	// A neutral origin outside every filtered ISP.
	target := "http://global-entertainment.org/"

	labClient := w.LabClient()
	clean, err := labClient.Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Header.Has("Via") {
		t.Fatalf("neutral vantage saw an injected Via header: %q", clean.Header.Get("Via"))
	}

	etisalat, err := w.FieldVantage(ISPEtisalat)
	if err != nil {
		t.Fatal(err)
	}
	field, err := etisalat.Client(0).Get(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if !field.Header.Has("Via") {
		t.Fatal("filtered vantage saw no middlebox evidence; vantage dependence not modeled")
	}
}
