package world

import (
	"fmt"
	"net/netip"

	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
	"filtermap/internal/products/bluecoat"
	"filtermap/internal/products/common"
	"filtermap/internal/products/netsweeper"
	"filtermap/internal/products/smartfilter"
	"filtermap/internal/products/websense"
)

// buildBackgroundInstallations populates the Figure 1 world beyond the
// case-study countries: the Blue Coat observations in South America,
// Europe, Asia and the Middle East, the US enterprise/ISP/educational
// installations §3.2 describes (including the USAISC address), the
// SmartFilter installation in Pakistan, and a handful of decoy hosts that
// keyword search surfaces but validation must reject.
func (w *World) buildBackgroundInstallations() error {
	type bgInstall struct {
		product  string // "bluecoat", "netsweeper", "websense", "smartfilter"
		asn      int
		asName   string
		country  string
		cidr     string
		ip       string
		hostname string
	}
	installs := []bgInstall{
		// Blue Coat's new countries (§3.2).
		{"bluecoat", 7303, "Telecom Argentina", "AR", "181.96.0.0/16", "181.96.1.1", "proxy.telecom.com.ar"},
		{"bluecoat", 7418, "Telefonica Chile", "CL", "190.96.0.0/16", "190.96.1.1", "cache.tchile.cl"},
		{"bluecoat", 719, "Elisa Oyj", "FI", "91.152.0.0/16", "91.152.1.1", "gw.elisa.fi"},
		{"bluecoat", 3301, "TeliaSonera", "SE", "81.224.0.0/16", "81.224.1.1", "proxy.telia.se"},
		{"bluecoat", 9299, "Philippine Long Distance Telephone", "PH", "112.198.0.0/16", "112.198.1.1", "cache.pldt.com.ph"},
		{"bluecoat", 7470, "True Internet", "TH", "27.130.0.0/16", "27.130.1.1", "proxy.true.co.th"},
		{"bluecoat", 3462, "Chunghwa Telecom HiNet", "TW", "61.216.0.0/16", "61.216.1.1", "cache.hinet.com.tw"},
		{"bluecoat", 8551, "Bezeq International", "IL", "79.176.0.0/16", "79.176.1.1", "proxy.bezeqint.co.il"},
		{"bluecoat", 42020, "Ogero Telecom", "LB", "178.135.0.0/16", "178.135.1.1", "cache.ogero.gov.lb"},
		{"bluecoat", 29256, "Syrian Telecom", "SY", "31.9.0.0/16", "31.9.1.1", "proxy.ste.gov.sy"},
		// Blue Coat in large US networks and USAISC (§3.2).
		{"bluecoat", 7922, "COMCAST-7922", "US", "73.32.0.0/16", "73.32.1.1", "cache.comcast.example"},
		{"bluecoat", 1239, "SPRINTLINK", "US", "208.27.0.0/16", "208.27.1.1", "proxy.sprint.example"},
		{"bluecoat", 721, "DoD Network Information Center (USAISC)", "US", "140.153.0.0/16", "140.153.1.1", "gw.usaisc.army.example"},
		// Netsweeper in US educational networks (§3.2).
		{"netsweeper", 2572, "WVNET West Virginia Network", "US", "129.71.0.0/16", "129.71.1.1", "filter.wvnet.example"},
		{"netsweeper", 5078, "ONENET-AS Oklahoma Network", "US", "164.58.0.0/16", "164.58.1.1", "filter.onenet.example"},
		{"netsweeper", 2552, "MORENET Missouri Research Network", "US", "150.199.0.0/16", "150.199.1.1", "filter.more.example"},
		// Netsweeper in large US ISPs (§3.2).
		{"netsweeper", 3549, "GBLX Global Crossing", "US", "208.48.0.0/16", "208.48.1.1", "ns.gblx.example"},
		{"netsweeper", 7018, "ATT-INTERNET4", "US", "12.36.0.0/16", "12.36.1.1", "ns.att.example"},
		{"netsweeper", 701, "UUNET Verizon Business", "US", "71.240.0.0/16", "71.240.1.1", "ns.verizon.example"},
		{"netsweeper", 6389, "BELLSOUTH-NET-BLK", "US", "65.80.0.0/16", "65.80.1.1", "ns.bellsouth.example"},
		// Websense in two Texas utilities (§3.2).
		{"websense", 64550, "Texas Municipal Utility District 1", "US", "170.10.0.0/16", "170.10.1.1", "wsg.tx-util1.example"},
		{"websense", 64551, "Texas Municipal Utility District 2", "US", "170.11.0.0/16", "170.11.1.1", "wsg.tx-util2.example"},
		// SmartFilter in Pakistan (previously observed, Figure 1).
		{"smartfilter", 17557, "PKTELECOM-AS-PK Pakistan Telecom", "PK", "202.125.0.0/16", "202.125.1.1", "mwg.ptcl.net.pk"},
		// SmartFilter in a US enterprise (dual-use baseline).
		{"smartfilter", 64552, "ACME-CORP Enterprise Network", "US", "63.80.0.0/16", "63.80.1.1", "mwg.acme.example"},
	}

	for _, bg := range installs {
		as, err := w.addAS(bg.asn, bg.asName, bg.country, bg.cidr)
		if err != nil {
			return err
		}
		isp, err := w.Net.AddISP(bg.asName, as)
		if err != nil {
			return err
		}
		host, err := w.Net.AddHost(netip.MustParseAddr(bg.ip), bg.hostname, isp)
		if err != nil {
			return err
		}
		if err := w.installBackgroundProduct(bg.product, host); err != nil {
			return err
		}
	}
	if err := w.activateSyriaFiltering(); err != nil {
		return err
	}
	if err := w.activateEnterpriseFiltering(); err != nil {
		return err
	}
	return w.buildDecoys()
}

// ISP names for the two active background deployments.
const (
	// ISPSyrianTelecom is Syria's state ISP; its Blue Coat appliances were
	// the paper's starting observation (§1: "initial study of Syria where
	// external facing IP addresses were used to host Blue Coat products",
	// ref [32] "Behind Blue Coat").
	ISPSyrianTelecom = "Syrian Telecom"
	// ISPTexasUtility1 is the dual-use baseline: a legitimate enterprise
	// deployment (§3.2: these products "play a legitimate role in network
	// management", so usage must be confirmed, not assumed).
	ISPTexasUtility1 = "Texas Municipal Utility District 1"
)

// activateSyriaFiltering puts the already-installed Syrian Blue Coat
// appliance inline: unlike the other background installs, Syria actually
// censors with Blue Coat's own WebFilter engine — proxy avoidance via the
// vendor category plus an operator list of political content.
func (w *World) activateSyriaFiltering() error {
	isp, ok := w.Net.ISPByName(ISPSyrianTelecom)
	if !ok {
		return fmt.Errorf("world: Syrian Telecom ISP missing")
	}
	filterAddr := netip.MustParseAddr("31.9.1.1")
	filterHost, ok := w.Net.Host(filterAddr)
	if !ok {
		return fmt.Errorf("world: Syrian Blue Coat host missing")
	}
	engine := &bluecoat.Engine{
		View:          &common.SyncView{DB: w.BlueCoatDB},
		Policy:        common.NewCategoryPolicy(bluecoat.CatProxyAvoidance, bluecoat.CatPornography),
		ApplianceName: "proxy.ste.gov.sy",
	}
	for _, domain := range []string{
		"global-political-reform.org", "global-opposition-parties.org",
		"global-media-freedom.org", "worldpressherald.org",
		"global-human-rights.org", "rightswatch-intl.org",
	} {
		engine.Policy.AddCustom(domain, "ste-blocklist")
	}
	// The appliance was installed engine-less by the background pass;
	// wire a filtering gateway on the same host for the egress path.
	gw := &common.Gateway{
		Host:     filterHost,
		Engine:   engine,
		ViaToken: "1.1 proxy.ste.gov.sy (Blue Coat ProxySG 6.5)",
	}
	if w.Opts.ScrubHeaders {
		gw.Anonymize = true
		gw.BrandTokens = bluecoat.BrandTokens
	}
	isp.SetInterceptor(gw)
	tester, err := w.Net.AddHost(netip.MustParseAddr("31.9.20.20"), "", isp)
	if err != nil {
		return err
	}
	w.FieldHosts[ISPSyrianTelecom] = tester
	return nil
}

// activateEnterpriseFiltering puts the first Texas utility's Websense
// inline with an enterprise acceptable-use policy: adult content and
// gambling are blocked, political and LGBT content is not — the
// legitimate half of the dual-use story.
func (w *World) activateEnterpriseFiltering() error {
	isp, ok := w.Net.ISPByName(ISPTexasUtility1)
	if !ok {
		return fmt.Errorf("world: Texas utility ISP missing")
	}
	filterAddr := netip.MustParseAddr("170.10.1.1")
	filterHost, ok := w.Net.Host(filterAddr)
	if !ok {
		return fmt.Errorf("world: Texas utility Websense host missing")
	}
	engine := &websense.Engine{
		View:      &common.SyncView{DB: w.WebsenseDB},
		Policy:    common.NewCategoryPolicy(websense.CatAdultContent, websense.CatGambling),
		BlockHost: "wsg.tx-util1.example",
	}
	gw := &common.Gateway{
		Host:     filterHost,
		Engine:   engine,
		ViaToken: "1.1 wsg.tx-util1.example (Websense Content Gateway)",
	}
	if w.Opts.ScrubHeaders {
		gw.Anonymize = true
		gw.BrandTokens = websense.BrandTokens
	}
	isp.SetInterceptor(gw)
	tester, err := w.Net.AddHost(netip.MustParseAddr("170.10.20.20"), "", isp)
	if err != nil {
		return err
	}
	w.FieldHosts[ISPTexasUtility1] = tester
	return nil
}

// installBackgroundProduct mounts a product's network faces on a host.
// Background installs do not intercept anything — identification only
// observes their consoles, which is all §3 can see from outside.
func (w *World) installBackgroundProduct(product string, host *netsim.Host) error {
	vis := w.consoleVisibility()
	scrub := w.Opts.ScrubHeaders
	switch product {
	case "bluecoat":
		_, err := bluecoat.Install(host, bluecoat.Config{ConsoleVisibility: vis, Scrub: scrub})
		return err
	case "netsweeper":
		engine := &netsweeper.Engine{
			View:   &common.SyncView{DB: w.NetsweeperDB},
			Policy: common.NewCategoryPolicy(netsweeper.CatPornography),
		}
		_, err := netsweeper.Install(host, netsweeper.Config{Engine: engine, WebAdminVisibility: vis, Scrub: scrub})
		return err
	case "websense":
		engine := &websense.Engine{
			View:   &common.SyncView{DB: w.WebsenseDB},
			Policy: common.NewCategoryPolicy(websense.CatAdultContent),
		}
		_, err := websense.Install(host, websense.Config{Engine: engine, ConsoleVisibility: vis, Scrub: scrub})
		return err
	case "smartfilter":
		engine := &smartfilter.Engine{
			View:   &common.SyncView{DB: w.SmartFilterDB},
			Policy: common.NewCategoryPolicy(smartfilter.CatPornography),
		}
		_, err := smartfilter.Install(host, smartfilter.Config{Engine: engine, ConsoleVisibility: vis, Scrub: scrub})
		return err
	default:
		panic("world: unknown background product " + product)
	}
}

// buildDecoys stands up hosts whose banners contain product keywords
// without hosting the products: the false positives §3.1's validation
// stage exists to reject.
func (w *World) buildDecoys() error {
	if _, err := w.addAS(64553, "SMALLWEB-HOSTING", "US", "205.140.0.0/16"); err != nil {
		return err
	}
	decoys := []struct {
		ip, name string
		handler  httpwire.Handler
	}{
		{
			// A technology blog discussing Netsweeper and webadmin paths.
			"205.140.1.1", "techblog.example",
			staticPage("Filtering Tech Review",
				`<h1>Review: content filters compared</h1>
<p>We compared Netsweeper's webadmin console against competitors. The
deny page at 8080/webadmin/deny is distinctive. McAfee Web Gateway and
Blue Coat ProxySG were also tested, as was the infamous "url blocked"
page and cfru= redirect flow.</p>`),
		},
		{
			// A generic router admin page titled "WebAdmin".
			"205.140.1.2", "router.smallisp.example",
			staticPage("WebAdmin Router Console",
				`<h1>Router WebAdmin</h1><p>Firmware 2.4 login.</p>`),
		},
		{
			// A forum thread mentioning blockpage.cgi.
			"205.140.1.3", "forum.netops.example",
			staticPage("NetOps Forum - proxy thread",
				`<h1>Thread: blockpage.cgi keeps appearing</h1>
<p>Our users hit ws-session redirects from a websense box upstream.</p>`),
		},
	}
	for _, d := range decoys {
		if err := w.serveVendorHost(d.ip, d.name, d.handler); err != nil {
			return err
		}
	}
	return nil
}

func staticPage(title, body string) httpwire.Handler {
	return httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
		return httpwire.NewResponse(200,
			httpwire.NewHeader("Content-Type", "text/html; charset=utf-8", "Server", "nginx/1.2.1"),
			common.HTMLPage(title, body))
	})
}
