package world

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"filtermap/internal/categorydb"
	"filtermap/internal/confirm"
	"filtermap/internal/engine"
	"filtermap/internal/httpwire"
	"filtermap/internal/products/bluecoat"
	"filtermap/internal/products/netsweeper"
	"filtermap/internal/products/smartfilter"
	"filtermap/internal/urllist"
)

// Researcher identities used on vendor submission forms.
const (
	// LabEmail is the research group's normal address — the identity a
	// vendor submission filter would key on (Table 5 row 3).
	LabEmail = "research@measurement.utoronto.example"
	// WebmailEmail is the throwaway webmail identity of the §6.2
	// countermeasure.
	WebmailEmail = "cloudyskies1984@freewebmail.example"
)

// DuCampaignStart returns the first campaign start time at or after
// `after` that reproduces Du's 5/6: with Du syncing weekly at
// DuSyncAnchor + k*week and submissions reviewed at +3 days plus a
// 6-hour-per-submission stagger, a start 100 hours before a weekly sync
// puts exactly five of six submissions before the cutoff:
//
//	decisions at t0+{72,78,84,90,96,102}h; sync at t0+100h
//	=> five decisions visible at the sync, the sixth waits a week,
//	   beyond the re-test window.
func DuCampaignStart(after time.Time) time.Time {
	const week = 7 * 24 * time.Hour
	t0 := DuSyncAnchor.Add(-100 * time.Hour)
	for t0.Before(after) {
		t0 = t0.Add(week)
	}
	return t0
}

// Plan is one scheduled confirmation case study.
type Plan struct {
	// Key identifies the plan, e.g. "smartfilter-uae-etisalat-2012".
	Key string
	// TableOrder is the row's position in Table 3.
	TableOrder int
	// StartAt is the virtual start time.
	StartAt time.Time
	// Build provisions test sites and returns the runnable campaign. It
	// must be called when the world clock has reached StartAt.
	Build func() (*confirm.Campaign, error)
}

// submitEmail picks the identity submissions carry.
func (w *World) submitEmail() string { return LabEmail }

// blueCoatSubmitter submits to the Site Review portal from the lab.
func (w *World) blueCoatSubmitter(client *httpwire.Client, email string) confirm.SubmitFunc {
	return func(ctx context.Context, url, category string) error {
		resp, err := bluecoat.SubmitViaPortal(ctx, client, HostSiteReview, url, category, email)
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("site review returned %s", resp.Status())
		}
		return nil
	}
}

// smartFilterSubmitter submits to the TrustedSource portal from the lab.
func (w *World) smartFilterSubmitter(client *httpwire.Client, email string) confirm.SubmitFunc {
	return func(ctx context.Context, url, category string) error {
		resp, err := smartfilter.SubmitViaPortal(ctx, client, HostTrustedSource, url, category, email)
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("trustedsource returned %s", resp.Status())
		}
		return nil
	}
}

// netsweeperSubmitter submits to test-a-site; the requested category is
// left to the vendor's classifier, as the paper's §4.4 submissions were.
func (w *World) netsweeperSubmitter(client *httpwire.Client, email string) confirm.SubmitFunc {
	return func(ctx context.Context, url, _ string) error {
		resp, err := netsweeper.SubmitViaTestASite(ctx, client, HostTestASite, url, "", email)
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("test-a-site returned %s", resp.Status())
		}
		return nil
	}
}

// campaignBase fills the fields shared by every Table 3 campaign.
func (w *World) campaignBase(product, country, isp string, asn int, date string) (*confirm.Campaign, error) {
	measure, err := w.MeasureClient(isp)
	if err != nil {
		return nil, err
	}
	return &confirm.Campaign{
		Product:       product,
		Country:       country,
		ISP:           isp,
		ASN:           asn,
		Date:          date,
		WaitDays:      4,
		RetestRounds:  3,
		RetestSpacing: 6 * time.Hour,
		Wait:          w.Wait,
		Measure:       measure,
	}, nil
}

// Table3Plans returns the ten case studies of Table 3, scheduled on the
// paper's timeline. Run them in StartAt order on a fresh world.
func (w *World) Table3Plans() []Plan {
	date := func(y int, m time.Month, d, h int) time.Time {
		return time.Date(y, m, d, h, 0, 0, 0, time.UTC)
	}
	labClient := w.LabClient()
	email := w.submitEmail()

	plans := []Plan{
		{
			Key: "bluecoat-uae-etisalat", TableOrder: 1, StartAt: date(2013, 4, 1, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(bluecoat.Name, "AE", ISPEtisalat, ASNEtisalat, "4/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 6)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 3, true
				c.Category, c.CategoryLabel = bluecoat.CatProxyAvoidance, "Proxy Avoidance"
				c.Submit = w.blueCoatSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "bluecoat-qatar-ooredoo", TableOrder: 2, StartAt: date(2013, 4, 7, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(bluecoat.Name, "QA", ISPOoredoo, ASNOoredoo, "4/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 6)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 3, true
				c.Category, c.CategoryLabel = bluecoat.CatProxyAvoidance, "Proxy Avoidance"
				c.Submit = w.blueCoatSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "smartfilter-qatar-ooredoo", TableOrder: 3, StartAt: date(2013, 4, 13, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(smartfilter.Name, "QA", ISPOoredoo, ASNOoredoo, "4/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.AdultImage, 10)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 5, true
				c.Category, c.CategoryLabel = smartfilter.CatPornography, "Pornography"
				c.Submit = w.smartFilterSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "smartfilter-saudi-bayanat", TableOrder: 4, StartAt: date(2012, 9, 10, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(smartfilter.Name, "SA", ISPBayanat, ASNBayanat, "9/2012")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.AdultImage, 10)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 5, true
				c.Category, c.CategoryLabel = smartfilter.CatPornography, "Pornography"
				c.Submit = w.smartFilterSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "smartfilter-saudi-nournet", TableOrder: 5, StartAt: date(2013, 5, 6, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(smartfilter.Name, "SA", ISPNournet, ASNNournet, "5/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.AdultImage, 10)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 5, true
				c.Category, c.CategoryLabel = smartfilter.CatPornography, "Pornography"
				c.Submit = w.smartFilterSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "smartfilter-uae-etisalat-2012", TableOrder: 6, StartAt: date(2012, 9, 20, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(smartfilter.Name, "AE", ISPEtisalat, ASNEtisalat, "9/2012")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 10)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 5, true
				c.Category, c.CategoryLabel = smartfilter.CatAnonymizers, "Anonymizers"
				c.Submit = w.smartFilterSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "smartfilter-uae-etisalat-2013", TableOrder: 7, StartAt: date(2013, 4, 19, 0),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(smartfilter.Name, "AE", ISPEtisalat, ASNEtisalat, "4/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.AdultImage, 10)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 5, true
				c.Category, c.CategoryLabel = smartfilter.CatPornography, "Pornography"
				c.Submit = w.smartFilterSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "netsweeper-qatar-ooredoo", TableOrder: 8, StartAt: date(2013, 8, 5, 20),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(netsweeper.Name, "QA", ISPOoredoo, ASNOoredoo, "8/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 12)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 6, false
				c.Category, c.CategoryLabel = netsweeper.CatProxyAnonymizer, "Proxy anonymizer"
				c.Submit = w.netsweeperSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "netsweeper-uae-du", TableOrder: 9, StartAt: DuCampaignStart(date(2013, 3, 1, 0)),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(netsweeper.Name, "AE", ISPDu, ASNDu, "3/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 12)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 6, false
				c.Category, c.CategoryLabel = netsweeper.CatProxyAnonymizer, "Proxy anonymizer"
				c.Submit = w.netsweeperSubmitter(labClient, email)
				return c, nil
			},
		},
		{
			Key: "netsweeper-yemen-yemennet", TableOrder: 10, StartAt: date(2013, 3, 12, 20),
			Build: func() (*confirm.Campaign, error) {
				c, err := w.campaignBase(netsweeper.Name, "YE", ISPYemenNet, ASNYemenNet, "3/2013")
				if err != nil {
					return nil, err
				}
				urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 12)
				if err != nil {
					return nil, err
				}
				c.DomainURLs, c.SubmitCount, c.PreTest = urls, 6, false
				c.Category, c.CategoryLabel = netsweeper.CatProxyAnonymizer, "Proxy anonymizer"
				c.Submit = w.netsweeperSubmitter(labClient, email)
				return c, nil
			},
		},
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].StartAt.Before(plans[j].StartAt) })
	return plans
}

// RunTable3 executes all ten case studies chronologically on the world's
// clock and returns the outcomes in Table 3 row order.
//
// Campaigns run through the engine at one worker: each plan advances the
// shared manual clock to its StartAt, so campaigns must execute strictly
// in schedule order — the pool here buys stats/observability, not
// parallelism. The URL measurements inside each campaign still fan out.
func (w *World) RunTable3(ctx context.Context) ([]*confirm.Outcome, error) {
	plans := w.Table3Plans()
	// No engine retry or timeout either: a campaign advances the clock and
	// submits URLs to vendors, so re-running one on failure would replay
	// side effects against mutated state.
	cfg := w.Engine.With(engine.WithWorkers(1), engine.WithTimeout(0), engine.WithRetryPolicy(engine.RetryPolicy{}))
	type keyed struct {
		order   int
		outcome *confirm.Outcome
	}
	results, err := engine.Map(ctx, cfg, StageCampaign, plans, func(ctx context.Context, p Plan) (keyed, error) {
		if w.Clock.Now().After(p.StartAt) {
			return keyed{}, fmt.Errorf("world: clock %v already past plan %s start %v", w.Clock.Now(), p.Key, p.StartAt)
		}
		w.Clock.AdvanceTo(p.StartAt)
		campaign, err := p.Build()
		if err != nil {
			return keyed{}, fmt.Errorf("world: build %s: %w", p.Key, err)
		}
		outcome, err := confirm.Run(ctx, campaign)
		if err != nil {
			return keyed{}, fmt.Errorf("world: run %s: %w", p.Key, err)
		}
		return keyed{p.TableOrder, outcome}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].order < results[j].order })
	out := make([]*confirm.Outcome, len(results))
	for i, r := range results {
		out[i] = r.outcome
	}
	return out, nil
}

// ErrUnknownPlan reports a campaign key that matches no Table 3 plan.
var ErrUnknownPlan = errors.New("world: unknown plan")

// RunPlan executes a single Table 3 case study by key on this world's
// clock. Like RunTable3, it consumes the timeline: the clock advances to
// the plan's start and the campaign's submissions mutate vendor state, so
// run each plan at most once per world, in StartAt order.
func (w *World) RunPlan(ctx context.Context, key string) (*confirm.Outcome, error) {
	for _, p := range w.Table3Plans() {
		if p.Key != key {
			continue
		}
		if w.Clock.Now().After(p.StartAt) {
			return nil, fmt.Errorf("world: clock %v already past plan %s start %v", w.Clock.Now(), p.Key, p.StartAt)
		}
		w.Clock.AdvanceTo(p.StartAt)
		campaign, err := p.Build()
		if err != nil {
			return nil, fmt.Errorf("world: build %s: %w", p.Key, err)
		}
		return confirm.Run(ctx, campaign)
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownPlan, key)
}

// PlanKeys lists the Table 3 campaign keys in StartAt order.
func (w *World) PlanKeys() []string {
	plans := w.Table3Plans()
	keys := make([]string, len(plans))
	for i, p := range plans {
		keys[i] = p.Key
	}
	return keys
}

// installSubmissionFilters arms Table 5 row 3: every vendor silently
// disregards submissions from the lab's IP or institutional e-mail.
func (w *World) installSubmissionFilters() {
	labAddr := w.Lab.Addr()
	filter := func(sub categorydb.Submission) bool {
		if sub.SubmitterIP == labAddr {
			return false
		}
		if strings.Contains(strings.ToLower(sub.SubmitterEmail), "utoronto") {
			return false
		}
		return true
	}
	for _, db := range []*categorydb.DB{w.BlueCoatDB, w.SmartFilterDB, w.NetsweeperDB, w.WebsenseDB} {
		db.SetSubmissionFilter(filter)
	}
}

// CounterEvasionSubmitter returns a submit function using the §6.2
// countermeasures: a proxy exit IP and a throwaway webmail identity.
func (w *World) CounterEvasionSubmitter(product string) confirm.SubmitFunc {
	client := w.ProxyClient()
	switch product {
	case bluecoat.Name:
		return w.blueCoatSubmitter(client, WebmailEmail)
	case smartfilter.Name:
		return w.smartFilterSubmitter(client, WebmailEmail)
	case netsweeper.Name:
		return w.netsweeperSubmitter(client, WebmailEmail)
	default:
		return nil
	}
}
