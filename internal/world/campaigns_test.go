package world

import (
	"context"
	"testing"
	"time"

	"filtermap/internal/simclock"
)

// TestDuCampaignStartArithmetic pins the mechanism behind Table 3's 5/6:
// the returned start time must put a weekly Du sync exactly 100 hours
// after campaign start.
func TestDuCampaignStartArithmetic(t *testing.T) {
	after := time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	t0 := DuCampaignStart(after)
	if t0.Before(after) {
		t.Fatalf("start %v before requested %v", t0, after)
	}
	if t0.Sub(after) > 8*24*time.Hour {
		t.Fatalf("start %v more than a week past %v", t0, after)
	}
	// A sync (DuSyncAnchor + k*week) must land at exactly t0+100h.
	syncAt := t0.Add(100 * time.Hour)
	offset := syncAt.Sub(DuSyncAnchor) % DuSyncInterval
	if offset != 0 {
		t.Fatalf("no weekly sync at t0+100h (offset %v)", offset)
	}
	// Decisions at +72..+96h fall before the sync; +102h falls after.
	for i, decided := range []time.Duration{72, 78, 84, 90, 96} {
		if t0.Add(decided * time.Hour).After(syncAt) {
			t.Fatalf("decision %d at +%dh would miss the sync", i, decided)
		}
	}
	if !t0.Add(102 * time.Hour).After(syncAt) {
		t.Fatal("sixth decision would catch the sync; 5/6 breaks")
	}
}

// TestTable3PlansWellFormed checks the schedule invariants RunTable3
// depends on.
func TestTable3PlansWellFormed(t *testing.T) {
	w := buildTestWorld(t, Options{})
	plans := w.Table3Plans()
	if len(plans) != 10 {
		t.Fatalf("plans = %d, want 10", len(plans))
	}
	orders := make(map[int]bool)
	keys := make(map[string]bool)
	var prev time.Time
	for i, p := range plans {
		if keys[p.Key] {
			t.Fatalf("duplicate plan key %q", p.Key)
		}
		keys[p.Key] = true
		if orders[p.TableOrder] || p.TableOrder < 1 || p.TableOrder > 10 {
			t.Fatalf("bad table order %d for %s", p.TableOrder, p.Key)
		}
		orders[p.TableOrder] = true
		if i > 0 {
			// Chronological and spaced beyond a campaign's ~4.5 day span.
			gap := p.StartAt.Sub(prev)
			if gap < 5*24*time.Hour {
				t.Fatalf("plans %d/%d only %v apart; campaigns would overlap", i-1, i, gap)
			}
		}
		prev = p.StartAt
		if p.StartAt.Before(simclock.Epoch) {
			t.Fatalf("plan %s starts before the world epoch", p.Key)
		}
	}
}

// TestRunTable3RejectsLateClock documents the one-shot nature of the
// timeline: a world whose clock has passed a plan's start cannot replay
// it.
func TestRunTable3RejectsLateClock(t *testing.T) {
	w := buildTestWorld(t, Options{})
	w.Clock.AdvanceTo(time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC))
	if _, err := w.RunTable3(context.Background()); err == nil {
		t.Fatal("RunTable3 accepted a clock past the schedule")
	}
}

// TestCounterEvasionSubmitterUnknownProduct returns nil for products
// without portals.
func TestCounterEvasionSubmitterUnknownProduct(t *testing.T) {
	w := buildTestWorld(t, Options{})
	if w.CounterEvasionSubmitter("NoSuchVendor") != nil {
		t.Fatal("unknown product returned a submitter")
	}
	for _, p := range []string{"Blue Coat", "McAfee SmartFilter", "Netsweeper"} {
		if w.CounterEvasionSubmitter(p) == nil {
			t.Fatalf("no submitter for %s", p)
		}
	}
}

// TestProvisionTestSitesFreshAndReachable: provisioning yields unique
// live domains reachable from the lab.
func TestProvisionTestSitesFreshAndReachable(t *testing.T) {
	w := buildTestWorld(t, Options{})
	urls, err := w.ProvisionTestSites(0 /* Benign */, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	client := w.LabClient()
	for _, u := range urls {
		if seen[u] {
			t.Fatalf("duplicate provisioned url %s", u)
		}
		seen[u] = true
		resp, err := client.Get(context.Background(), u)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("provisioned site %s unreachable: %v %v", u, resp, err)
		}
	}
}

// TestWorldDeterministicDomains: two worlds with the same seed provision
// the same domain sequence; different seeds diverge.
func TestWorldDeterministicDomains(t *testing.T) {
	w1 := buildTestWorld(t, Options{Seed: 7})
	w2 := buildTestWorld(t, Options{Seed: 7})
	w3 := buildTestWorld(t, Options{Seed: 8})
	u1, _ := w1.ProvisionTestSites(0, 5)
	u2, _ := w2.ProvisionTestSites(0, 5)
	u3, _ := w3.ProvisionTestSites(0, 5)
	same12, same13 := 0, 0
	for i := range u1 {
		if u1[i] == u2[i] {
			same12++
		}
		if u1[i] == u3[i] {
			same13++
		}
	}
	if same12 != len(u1) {
		t.Fatal("same seed produced different domains")
	}
	if same13 == len(u1) {
		t.Fatal("different seeds produced identical domains")
	}
}
