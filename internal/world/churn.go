package world

import (
	"fmt"
	"net/netip"

	"filtermap/internal/geo"
)

// This file mutates an already-built world between identification runs,
// modeling the deployment churn the longitudinal layer exists to detect:
// new installations appearing, old ones going dark, and surviving boxes
// being re-announced from a different AS or country. These helpers touch
// the network, geo DB and whois table, none of which tolerate concurrent
// mutation with a running pipeline — churn the world between runs, not
// during one.

// backgroundProducts are the product names installBackgroundProduct
// accepts (it panics on anything else, so AddBackgroundInstall validates
// here first).
var backgroundProducts = map[string]bool{
	"bluecoat": true, "netsweeper": true, "websense": true, "smartfilter": true,
}

// AddBackgroundInstall stands up a new background installation — a new
// AS, ISP and host with the product's network faces mounted — exactly
// like the seed installations behind Figure 1. The next identification
// run discovers it.
func (w *World) AddBackgroundInstall(product string, asn int, asName, country, cidr, ip, hostname string) error {
	if !backgroundProducts[product] {
		return fmt.Errorf("world: unknown background product %q", product)
	}
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return fmt.Errorf("world: add install: %w", err)
	}
	as, err := w.addAS(asn, asName, country, cidr)
	if err != nil {
		return fmt.Errorf("world: add install: %w", err)
	}
	isp, err := w.Net.AddISP(asName, as)
	if err != nil {
		return fmt.Errorf("world: add install: %w", err)
	}
	host, err := w.Net.AddHost(addr, hostname, isp)
	if err != nil {
		return fmt.Errorf("world: add install: %w", err)
	}
	return w.installBackgroundProduct(product, host)
}

// RemoveInstallation takes the host at ip off the network (listeners
// closed, DNS withdrawn). The next identification run no longer finds it.
func (w *World) RemoveInstallation(ip string) error {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return fmt.Errorf("world: remove installation: %w", err)
	}
	if _, ok := w.Net.Host(addr); !ok {
		return fmt.Errorf("world: remove installation: no host at %s", ip)
	}
	w.Net.RemoveHost(addr)
	return nil
}

// UpgradeInstallation swaps the product mounted at ip for newProduct in
// place: the host is torn down (listeners closed, DNS withdrawn) and
// stood back up at the same address, hostname and ISP with the new
// product's network faces. The next identification run sees the old
// product vanish and the new one appear on the same box — a vendor
// change, the transition "Where The Light Gets In" caught ISPs making
// between measurement rounds.
func (w *World) UpgradeInstallation(ip, newProduct string) error {
	if !backgroundProducts[newProduct] {
		return fmt.Errorf("world: unknown background product %q", newProduct)
	}
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return fmt.Errorf("world: upgrade installation: %w", err)
	}
	host, ok := w.Net.Host(addr)
	if !ok {
		return fmt.Errorf("world: upgrade installation: no host at %s", ip)
	}
	name, isp := host.Name(), host.ISP()
	w.Net.RemoveHost(addr)
	fresh, err := w.Net.AddHost(addr, name, isp)
	if err != nil {
		return fmt.Errorf("world: upgrade installation: %w", err)
	}
	return w.installBackgroundProduct(newProduct, fresh)
}

// MigrateInstallation re-announces the host at ip from a different AS
// (and optionally country) by overlaying a /32 record in the whois table
// and geolocation DB — most-specific-prefix matching makes the overlay
// win over the original /16. The host itself keeps serving; only its
// attribution moves, which is exactly what an ISP renumbering or
// acquiring a deployment looks like from the §3 vantage. newCountry ""
// keeps the original country.
func (w *World) MigrateInstallation(ip string, newASN int, newASName, newCountry string) error {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return fmt.Errorf("world: migrate installation: %w", err)
	}
	if _, ok := w.Net.Host(addr); !ok {
		return fmt.Errorf("world: migrate installation: no host at %s", ip)
	}
	country := newCountry
	if country == "" {
		if rec, ok := w.ASTable.Lookup(addr); ok {
			country = rec.Country
		}
	}
	single := netip.PrefixFrom(addr, addr.BitLen())
	w.ASTable.Add(geo.ASRecord{ASN: newASN, Name: newASName, Country: country, Prefix: single})
	if newCountry != "" {
		w.GeoDB.Add(single, newCountry)
	}
	return nil
}
