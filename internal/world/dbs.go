package world

import (
	"filtermap/internal/categorydb"
	"filtermap/internal/products/bluecoat"
	"filtermap/internal/products/netsweeper"
	"filtermap/internal/products/smartfilter"
	"filtermap/internal/products/websense"
	"filtermap/internal/simclock"
	"filtermap/internal/urllist"
)

// The vendor master databases ship pre-seeded with the sites the paper's
// prior ONI observations establish as categorized: proxy/anonymizer
// services and pornography (§4.3-4.4 pick those categories because they
// were already known blocked). Research-list domains are categorized in
// the SmartFilter database under mapped categories so the Etisalat
// deployment's Table 4 row arises from vendor-category policy; Netsweeper
// deployments instead realize their Table 4 rows through operator custom
// lists (see deployments.go), so the denypagetests probe of §4.4 sees
// exactly the five enabled vendor categories in Yemen.

func newBlueCoatDB(clock simclock.Clock) *categorydb.DB {
	db := bluecoat.NewDatabase(clock)
	seed := map[string]string{
		"securelyproxy.net":              bluecoat.CatProxyAvoidance,
		"openanonymizer.net":             bluecoat.CatProxyAvoidance,
		"global-proxy-tools.org":         bluecoat.CatProxyAvoidance,
		"global-anonymizers.org":         bluecoat.CatProxyAvoidance,
		"global-pornography.org":         bluecoat.CatPornography,
		"global-gambling.org":            bluecoat.CatGambling,
		"global-media-freedom.org":       bluecoat.CatNewsMedia,
		"worldpressherald.org":           bluecoat.CatNewsMedia,
		"global-political-reform.org":    bluecoat.CatPolitical,
		"global-lgbt.org":                bluecoat.CatLGBT,
		"rainbowalliance.org":            bluecoat.CatLGBT,
		"global-religious-criticism.org": bluecoat.CatReligion,
	}
	for d, c := range seed {
		mustAdd(db, d, c)
	}
	return db
}

func newSmartFilterDB(clock simclock.Clock) *categorydb.DB {
	db := smartfilter.NewDatabase(clock)
	seed := map[string]string{
		// Prior-known proxy/anonymizer and pornography sites (§4.3).
		"securelyproxy.net":      smartfilter.CatAnonymizers,
		"openanonymizer.net":     smartfilter.CatAnonymizers,
		"global-proxy-tools.org": smartfilter.CatAnonymizers,
		"global-anonymizers.org": smartfilter.CatAnonymizers,
		"global-vpn.org":         smartfilter.CatAnonymizers,
		"global-pornography.org": smartfilter.CatPornography,
		"global-gambling.org":    smartfilter.CatGambling,
		// Research-list content mapped into SmartFilter categories; the
		// Etisalat policy enables a subset of these (Table 4 row 1).
		"global-media-freedom.org":             smartfilter.CatMedia,
		"worldpressherald.org":                 smartfilter.CatMedia,
		"emirates-monitor.org":                 smartfilter.CatMedia,
		"global-political-reform.org":          smartfilter.CatPolitics,
		"global-opposition-parties.org":        smartfilter.CatPolitics,
		"global-government-criticism.org":      smartfilter.CatPolitics,
		"uae-reform-now.org":                   smartfilter.CatPolitics,
		"global-lgbt.org":                      smartfilter.CatLGBT,
		"rainbowalliance.org":                  smartfilter.CatLGBT,
		"gulf-lgbt-network.org":                smartfilter.CatLGBT,
		"global-religious-criticism.org":       smartfilter.CatReligion,
		"islam-debate-forum.org":               smartfilter.CatReligion,
		"global-human-rights.org":              smartfilter.CatHumanRights,
		"rightswatch-intl.org":                 smartfilter.CatHumanRights,
		"uaedetaineewatch.org":                 smartfilter.CatHumanRights,
		"global-minority-groups-religions.org": smartfilter.CatMinority,
		"shia-community-gulf.org":              smartfilter.CatMinority,
		// Hidden linked-web sites (urllist.HiddenSites): categorized like
		// everything else, but on no curated testing list — only the
		// discovery crawler reaches them.
		"mirror-firewall-bypass.net": smartfilter.CatAnonymizers,
		"unblock-gateway.net":        smartfilter.CatAnonymizers,
		"hidden-tunnel-tools.net":    smartfilter.CatAnonymizers,
		"privacy-relay-network.net":  smartfilter.CatAnonymizers,
		"gulf-press-mirror.org":      smartfilter.CatMedia,
		"exiled-editors.org":         smartfilter.CatMedia,
		"arab-spring-archive.org":    smartfilter.CatPolitics,
		"gulf-pride-underground.org": smartfilter.CatLGBT,
		"free-faith-forum.org":       smartfilter.CatReligion,
	}
	for d, c := range seed {
		mustAdd(db, d, c)
	}
	return db
}

// newNetsweeperDB wires the vendor's content classifier to the simulated
// content directory: Glype proxy installations are machine-recognizable,
// so test-a-site submissions and the in-country categorization queue
// classify them as proxy-anonymizer without human review. Other content
// kinds land Unrated (a human queue the simulation does not grant).
func newNetsweeperDB(clock simclock.Clock, dir *urllist.Directory) *categorydb.DB {
	db := netsweeper.NewDatabase(clock)
	db.SetClassifier(categorydb.ClassifierFunc(func(domain, url string) (string, bool) {
		p, ok := dir.Lookup(domain)
		if !ok {
			return "", false
		}
		switch {
		case p.Kind == urllist.GlypeProxy:
			return netsweeper.CatProxyAnonymizer, true
		case p.Kind == urllist.ListContent && (p.ResearchCategory == "proxy-tools" || p.ResearchCategory == "anonymizers"):
			return netsweeper.CatProxyAnonymizer, true
		default:
			return "", false
		}
	}))
	seed := map[string]string{
		"securelyproxy.net":      netsweeper.CatProxyAnonymizer,
		"openanonymizer.net":     netsweeper.CatProxyAnonymizer,
		"global-proxy-tools.org": netsweeper.CatProxyAnonymizer,
		"global-anonymizers.org": netsweeper.CatProxyAnonymizer,
		"global-pornography.org": netsweeper.CatPornography,
		// Hidden linked-web proxy/anonymizer sites: pre-categorized in the
		// master database (the auto-queue's review delay would otherwise
		// keep them unrated for days of virtual time).
		"mirror-firewall-bypass.net": netsweeper.CatProxyAnonymizer,
		"unblock-gateway.net":        netsweeper.CatProxyAnonymizer,
		"hidden-tunnel-tools.net":    netsweeper.CatProxyAnonymizer,
		"privacy-relay-network.net":  netsweeper.CatProxyAnonymizer,
	}
	for d, c := range seed {
		mustAdd(db, d, c)
	}
	return db
}

func newWebsenseDB(clock simclock.Clock) *categorydb.DB {
	db := websense.NewDatabase(clock)
	seed := map[string]string{
		"securelyproxy.net":      websense.CatProxyAvoid,
		"openanonymizer.net":     websense.CatProxyAvoid,
		"global-proxy-tools.org": websense.CatProxyAvoid,
		"global-pornography.org": websense.CatAdultContent,
		"global-gambling.org":    websense.CatGambling,
	}
	for d, c := range seed {
		mustAdd(db, d, c)
	}
	return db
}

func mustAdd(db *categorydb.DB, domain, category string) {
	if err := db.AddDomain(domain, category); err != nil {
		panic("world: seeding " + db.Name() + ": " + err.Error())
	}
}
