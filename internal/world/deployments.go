package world

import (
	"net/netip"
	"time"

	"filtermap/internal/netsim"
	"filtermap/internal/products/bluecoat"
	"filtermap/internal/products/common"
	"filtermap/internal/products/netsweeper"
	"filtermap/internal/products/smartfilter"
	"filtermap/internal/products/websense"
	"filtermap/internal/simclock"
)

// Sync schedules. Most deployments pull vendor updates every 6 hours; Du
// pulls weekly, which is the mechanism behind Table 3's 5/6 result (see
// campaigns.go for the arithmetic).
const (
	frequentSync = 6 * time.Hour
	// DuSyncInterval is Du's weekly update pull.
	DuSyncInterval = 7 * 24 * time.Hour
)

// DuSyncAnchor fixes Du's weekly sync schedule: syncs at Epoch + k*week.
var DuSyncAnchor = simclock.Epoch

// WebsenseYemenCutoff is when Websense withdrew update support from Yemen
// (§2.2, 2009) — the YemenNet Websense box has a database frozen there.
var WebsenseYemenCutoff = time.Date(2009, time.August, 1, 0, 0, 0, 0, time.UTC)

// buildDeployments stands up the six Table 3 ISPs.
func (w *World) buildDeployments() error {
	if err := w.buildEtisalat(); err != nil {
		return err
	}
	if err := w.buildDu(); err != nil {
		return err
	}
	if err := w.buildOoredoo(); err != nil {
		return err
	}
	if err := w.buildSaudi(); err != nil {
		return err
	}
	return w.buildYemenNet()
}

// addISPWithTester creates an AS, ISP, filter host and in-country tester.
func (w *World) addISPWithTester(ispName string, asn int, asName, country, cidr, filterIP, filterName, testerIP string) (*netsim.ISP, *netsim.Host, error) {
	as, err := w.addAS(asn, asName, country, cidr)
	if err != nil {
		return nil, nil, err
	}
	isp, err := w.Net.AddISP(ispName, as)
	if err != nil {
		return nil, nil, err
	}
	filter, err := w.Net.AddHost(netip.MustParseAddr(filterIP), filterName, isp)
	if err != nil {
		return nil, nil, err
	}
	tester, err := w.Net.AddHost(netip.MustParseAddr(testerIP), "", isp)
	if err != nil {
		return nil, nil, err
	}
	w.FieldHosts[ispName] = tester
	return isp, filter, nil
}

// buildEtisalat builds UAE's incumbent: McAfee SmartFilter policy running
// on a Blue Coat ProxySG chassis (§4.5 challenge 3). Identification sees
// Blue Coat (the chassis is externally visible); confirmation shows the
// SmartFilter database drives the blocking, and Blue Coat Site Review
// submissions change nothing.
func (w *World) buildEtisalat() error {
	isp, filter, err := w.addISPWithTester(
		ISPEtisalat, ASNEtisalat, "EMIRATES-INTERNET Etisalat", "AE",
		"94.56.0.0/16", "94.56.1.1", "proxy1.emirates.net.ae", "94.56.20.20")
	if err != nil {
		return err
	}
	engine := &smartfilter.Engine{
		View: &common.SyncView{DB: w.SmartFilterDB, Interval: frequentSync, Anchor: simclock.Epoch},
		Policy: common.NewCategoryPolicy(
			smartfilter.CatPornography,
			smartfilter.CatAnonymizers,
			// Table 4 row (reconstructed): media freedom, political
			// reform, LGBT and religious-criticism content is blocked via
			// the corresponding SmartFilter categories.
			smartfilter.CatMedia,
			smartfilter.CatPolitics,
			smartfilter.CatLGBT,
			smartfilter.CatReligion,
		),
		GatewayName: "proxy1.emirates.net.ae",
	}
	appliance, err := bluecoat.Install(filter, bluecoat.Config{
		Name:              "proxy1.emirates.net.ae",
		Engine:            engine,
		ConsoleVisibility: w.consoleVisibility(),
		Scrub:             w.Opts.ScrubHeaders,
	})
	if err != nil {
		return err
	}
	if w.Opts.ScrubHeaders {
		// A scrubbing operator of a stacked deployment removes the loaded
		// engine's branding too, not just the chassis's.
		appliance.Gateway.BrandTokens = append(appliance.Gateway.BrandTokens, smartfilter.BrandTokens...)
	}
	isp.SetInterceptor(appliance.Gateway)
	return nil
}

// buildDu builds UAE's second ISP: Netsweeper with a weekly database sync.
func (w *World) buildDu() error {
	isp, filter, err := w.addISPWithTester(
		ISPDu, ASNDu, "DU-AS1 Emirates Integrated Telecommunications", "AE",
		"94.200.0.0/16", "94.200.1.1", "ns1.du.ae", "94.200.20.20")
	if err != nil {
		return err
	}
	interval := DuSyncInterval
	if w.Opts.DisableDuSyncLag {
		interval = frequentSync
	}
	engine := &netsweeper.Engine{
		View:   &common.SyncView{DB: w.NetsweeperDB, Interval: interval, Anchor: DuSyncAnchor},
		Policy: common.NewCategoryPolicy(netsweeper.CatProxyAnonymizer, netsweeper.CatPornography),
	}
	// Table 4 row (reconstructed): Du blocks political reform, LGBT,
	// religious-criticism and minority content through an operator custom
	// list layered over the vendor categories.
	for _, domain := range []string{
		"uae-reform-now.org", "global-political-reform.org",
		"gulf-lgbt-network.org", "global-lgbt.org", "rainbowalliance.org",
		"islam-debate-forum.org", "global-religious-criticism.org",
		"shia-community-gulf.org", "global-minority-groups-religions.org",
		// Hidden linked-web sites in the same themes (on no curated list;
		// only crawling surfaces them).
		"gulf-pride-underground.org", "free-faith-forum.org",
	} {
		engine.Policy.AddCustom(domain, "du-custom-blocklist")
	}
	dep, err := netsweeper.Install(filter, netsweeper.Config{
		Name:               "ns1.du.ae",
		Engine:             engine,
		WebAdminVisibility: w.consoleVisibility(),
		AutoQueue:          true,
		Scrub:              w.Opts.ScrubHeaders,
	})
	if err != nil {
		return err
	}
	isp.SetInterceptor(dep.Gateway)
	return nil
}

// buildOoredoo builds Qatar's Ooredoo: Netsweeper filtering plus a Blue
// Coat proxy used purely for traffic management (no policy engine), which
// is why Blue Coat Site Review submissions do nothing there (Table 3 row
// 2) and why identification still finds Blue Coat in Qatar.
func (w *World) buildOoredoo() error {
	isp, filter, err := w.addISPWithTester(
		ISPOoredoo, ASNOoredoo, "OOREDOO-AS Ooredoo Q.S.C.", "QA",
		"89.211.0.0/16", "89.211.1.1", "ns1.ooredoo.qa", "89.211.20.20")
	if err != nil {
		return err
	}
	engine := &netsweeper.Engine{
		View:   &common.SyncView{DB: w.NetsweeperDB, Interval: frequentSync, Anchor: simclock.Epoch},
		Policy: common.NewCategoryPolicy(netsweeper.CatProxyAnonymizer, netsweeper.CatPornography),
	}
	// Table 4 row (reconstructed): Qatar blocks LGBT and
	// religious-criticism content via custom listing.
	for _, domain := range []string{
		"qatari-lgbt-forum.org", "global-lgbt.org", "rainbowalliance.org",
		"gulf-religion-talk.org", "global-religious-criticism.org",
		// Hidden linked-web sites in the same themes.
		"gulf-pride-underground.org", "free-faith-forum.org",
	} {
		engine.Policy.AddCustom(domain, "ooredoo-custom-blocklist")
	}
	dep, err := netsweeper.Install(filter, netsweeper.Config{
		Name:               "ns1.ooredoo.qa",
		Engine:             engine,
		WebAdminVisibility: w.consoleVisibility(),
		// No automatic categorization queue at Ooredoo: §4.3's Qatar
		// pornography pre-test passes through unclassified, matching
		// Table 3's 0/5 outcome.
		AutoQueue: false,
		Scrub:     w.Opts.ScrubHeaders,
	})
	if err != nil {
		return err
	}
	isp.SetInterceptor(dep.Gateway)

	// The traffic-management ProxySG beside the filter (engine-less).
	bcHost, err := w.Net.AddHost(netip.MustParseAddr("89.211.1.2"), "cache1.ooredoo.qa", isp)
	if err != nil {
		return err
	}
	if _, err := bluecoat.Install(bcHost, bluecoat.Config{
		Name:              "cache1.ooredoo.qa",
		Engine:            nil,
		ConsoleVisibility: w.consoleVisibility(),
		Scrub:             w.Opts.ScrubHeaders,
	}); err != nil {
		return err
	}
	return nil
}

// buildSaudi builds the kingdom's centralized blocking (§4.3): one
// SmartFilter policy, enforced by gateways in both Bayanat Al-Oula and
// Nournet. Pornography is enabled; the proxy/anonymizer category is NOT
// (challenge 1: "it appears that Saudi Arabia is not using the proxy
// category provided by SmartFilter").
func (w *World) buildSaudi() error {
	centralView := &common.SyncView{DB: w.SmartFilterDB, Interval: frequentSync, Anchor: simclock.Epoch}
	centralPolicy := common.NewCategoryPolicy(smartfilter.CatPornography, smartfilter.CatGambling)

	build := func(ispName string, asn int, asName, cidr, filterIP, filterName, testerIP string) error {
		isp, filter, err := w.addISPWithTester(ispName, asn, asName, "SA", cidr, filterIP, filterName, testerIP)
		if err != nil {
			return err
		}
		engine := &smartfilter.Engine{View: centralView, Policy: centralPolicy, GatewayName: filterName}
		gwDep, err := smartfilter.Install(filter, smartfilter.Config{
			Name:              filterName,
			Engine:            engine,
			ConsoleVisibility: w.consoleVisibility(),
			Scrub:             w.Opts.ScrubHeaders,
		})
		if err != nil {
			return err
		}
		isp.SetInterceptor(gwDep.Gateway)
		return nil
	}
	if err := build(ISPBayanat, ASNBayanat, "BAYANAT-AL-OULA", "77.30.0.0/16", "77.30.1.1", "mwg1.bayanat.net.sa", "77.30.20.20"); err != nil {
		return err
	}
	return build(ISPNournet, ASNNournet, "NOURNET", "46.151.0.0/16", "46.151.1.1", "mwg1.nour.net.sa", "46.151.20.20")
}

// buildYemenNet builds Yemen's national ISP: Netsweeper with exactly the
// five vendor categories the §4.4 denypagetests probe found blocked, an
// operator custom list for protected content (Table 4 row), a concurrent
// license too small for peak demand (challenge 2's inconsistent
// blocking), and the legacy Websense box whose updates the vendor cut in
// 2009.
func (w *World) buildYemenNet() error {
	isp, filter, err := w.addISPWithTester(
		ISPYemenNet, ASNYemenNet, "YEMENNET", "YE",
		"82.114.160.0/19", "82.114.160.1", "ns1.yemen.net.ye", "82.114.161.20")
	if err != nil {
		return err
	}
	engine := &netsweeper.Engine{
		View: &common.SyncView{DB: w.NetsweeperDB, Interval: frequentSync, Anchor: simclock.Epoch},
		Policy: common.NewCategoryPolicy(
			netsweeper.CatAdultImage,
			netsweeper.CatPhishing,
			netsweeper.CatPornography,
			netsweeper.CatProxyAnonymizer,
			netsweeper.CatSearchKeywords,
		),
	}
	for _, domain := range []string{
		"sanaa-independent.org", "global-media-freedom.org", "worldpressherald.org",
		"yemeni-rights-forum.org", "global-human-rights.org", "rightswatch-intl.org",
		"yemen-change-now.org", "global-political-reform.org",
		"aden-free-voices.org", "global-lgbt.org",
		// Hidden linked-web sites in the same themes.
		"gulf-press-mirror.org", "exiled-editors.org",
		"detained-bloggers-list.org", "arab-spring-archive.org",
	} {
		engine.Policy.AddCustom(domain, "yemennet-custom-blocklist")
	}

	// License: 6000 seats against a 2000..9000 diurnal demand peaking at
	// 14:00 UTC — the filter fails open for the hours around the peak,
	// reproducing "some proxy URLs are accessible on runs where other
	// proxy URLs are blocked".
	license := &common.LicenseModel{
		MaxConcurrent: 6000,
		Load:          common.DiurnalLoad(2000, 9000, 14),
	}
	w.YemenLicense = &licenseHandle{MaxConcurrent: license.MaxConcurrent, Load: license.Load}

	dep, err := netsweeper.Install(filter, netsweeper.Config{
		Name:               "ns1.yemen.net.ye",
		Engine:             engine,
		License:            license,
		WebAdminVisibility: w.consoleVisibility(),
		AutoQueue:          true,
		Scrub:              w.Opts.ScrubHeaders,
	})
	if err != nil {
		return err
	}
	isp.SetInterceptor(dep.Gateway)

	// The stranded Websense box (pre-2009 deployment, updates frozen). It
	// no longer intercepts, but its console is still visible — one of
	// Figure 1's Websense observations.
	wsHost, err := w.Net.AddHost(netip.MustParseAddr("82.114.160.2"), "wsg1.yemen.net.ye", isp)
	if err != nil {
		return err
	}
	wsEngine := &websense.Engine{
		View:   &common.SyncView{DB: w.WebsenseDB, Interval: frequentSync, Anchor: simclock.Epoch, FrozenAt: WebsenseYemenCutoff},
		Policy: common.NewCategoryPolicy(websense.CatProxyAvoid, websense.CatAdultContent),
	}
	if _, err := websense.Install(wsHost, websense.Config{
		Name:              "wsg1.yemen.net.ye",
		Engine:            wsEngine,
		License:           &common.LicenseModel{MaxConcurrent: 3000, Load: common.DiurnalLoad(1000, 8000, 13)},
		ConsoleVisibility: w.consoleVisibility(),
		Scrub:             w.Opts.ScrubHeaders,
	}); err != nil {
		return err
	}
	return nil
}

// YemenFilteringActive reports whether the YemenNet license currently
// permits filtering (for tests and the inconsistency benchmark).
func (w *World) YemenFilteringActive(at time.Time) bool {
	return w.YemenLicense.Load(at) <= w.YemenLicense.MaxConcurrent
}
