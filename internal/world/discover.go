package world

import (
	"context"

	"filtermap/internal/characterize"
	"filtermap/internal/discovery"
	"filtermap/internal/engine"
	"filtermap/internal/urllist"
)

// DiscoveryOptions configures RunDiscovery.
type DiscoveryOptions struct {
	// ISPs restricts discovery to the named targets (nil or empty means
	// every characterization target). Unknown names are ignored; callers
	// wanting validation should check CharacterizationTargets first.
	ISPs []string
	// Rounds and Budget cap each target's crawl (0 applies the discovery
	// package defaults).
	Rounds int
	Budget int
}

// TargetDiscovery is one characterization target's crawl outcome.
type TargetDiscovery struct {
	Country string
	ISP     string
	ASN     int
	Report  *discovery.Report
}

// DiscoverySeeds returns the crawl seed URLs for a country: the global
// list followed by the country's local list, in list order.
func (w *World) DiscoverySeeds(country string) []string {
	g := urllist.GlobalList()
	l := urllist.LocalList(country)
	out := make([]string, 0, len(g.Entries)+len(l.Entries))
	out = append(out, g.URLs()...)
	out = append(out, l.URLs()...)
	return out
}

// NewCrawler builds a discovery crawler probing through the ISP's
// dual-vantage measurement client, with novelty judged against the
// curated lists and categories resolved from the content directory.
func (w *World) NewCrawler(isp string, rounds, budget int) (*discovery.Crawler, error) {
	client, err := w.MeasureClient(isp)
	if err != nil {
		return nil, err
	}
	return &discovery.Crawler{
		Prober:  client,
		Curated: CuratedDomains(),
		Categorize: func(domain string) string {
			if p, ok := w.Dir.Lookup(domain); ok {
				return p.ResearchCategory
			}
			return ""
		},
		Rounds: rounds,
		Budget: budget,
		Config: w.Engine,
	}, nil
}

// RunDiscovery crawls each selected target and returns reports in
// CharacterizationTargets order. Targets run sequentially — each crawl's
// probe fan-out already saturates the shared worker pool, and a fixed
// order keeps the run deterministic. The clock is positioned so the
// YemenNet license permits filtering, as for characterization.
func (w *World) RunDiscovery(ctx context.Context, opts DiscoveryOptions) ([]TargetDiscovery, error) {
	w.EnsureYemenFilteringActive()
	want := make(map[string]bool, len(opts.ISPs))
	for _, isp := range opts.ISPs {
		want[isp] = true
	}
	var out []TargetDiscovery
	for _, t := range CharacterizationTargets() {
		if len(opts.ISPs) > 0 && !want[t.ISP] {
			continue
		}
		crawler, err := w.NewCrawler(t.ISP, opts.Rounds, opts.Budget)
		if err != nil {
			return nil, err
		}
		rep := crawler.Crawl(ctx, w.DiscoverySeeds(t.Country))
		out = append(out, TargetDiscovery{Country: t.Country, ISP: t.ISP, ASN: t.ASN, Report: rep})
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
	}
	return out, nil
}

// DiscoveredList assembles the synthetic "discovered" testing list from
// the novel findings across per-target discovery reports (deduplicated
// and sorted by urllist.DiscoveredList, so target order does not matter).
func DiscoveredList(targets []TargetDiscovery) urllist.List {
	var entries []urllist.Entry
	for _, t := range targets {
		for _, f := range t.Report.Novel() {
			entries = append(entries, urllist.Entry{URL: f.URL, Domain: f.Domain, Category: f.Category})
		}
	}
	return urllist.DiscoveredList(entries)
}

// RunCharacterizationWithExtra runs §5 for the named ISPs (nil or empty
// means every target) with additional testing lists — typically the
// "discovered" list a discovery crawl produced — measured after the
// curated pair. Blocked extras carry their list name in FromList, so
// crawl-discovered blocking is attributable in Table 4's input.
func (w *World) RunCharacterizationWithExtra(ctx context.Context, isps []string, extra ...urllist.List) ([]*characterize.Report, error) {
	w.EnsureYemenFilteringActive()
	runs, err := w.CharacterizationRuns()
	if err != nil {
		return nil, err
	}
	if len(isps) > 0 {
		want := make(map[string]bool, len(isps))
		for _, isp := range isps {
			want[isp] = true
		}
		filtered := runs[:0]
		for _, r := range runs {
			if want[r.ISP] {
				filtered = append(filtered, r)
			}
		}
		runs = filtered
	}
	for i := range runs {
		runs[i].Extra = append(runs[i].Extra, extra...)
	}
	return engine.Map(ctx, w.Engine, StageCharacterize, runs, func(ctx context.Context, r characterize.Run) (*characterize.Report, error) {
		return characterize.Characterize(ctx, r), nil
	})
}
