package world

import (
	"context"
	"testing"

	"filtermap/internal/characterize"
	"filtermap/internal/measurement"
	"filtermap/internal/urllist"
)

// TestSyriaBlueCoatCensorship covers the paper's founding observation
// ([32], §1): Syrian Telecom censors with Blue Coat's own WebFilter —
// proxy sites via the vendor category, political content via an operator
// list — and the block pages attribute to Blue Coat.
func TestSyriaBlueCoatCensorship(t *testing.T) {
	w := buildTestWorld(t, Options{})
	client, err := w.MeasureClient(ISPSyrianTelecom)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	blocked := []string{
		"http://securelyproxy.net/",           // vendor proxy category
		"http://global-political-reform.org/", // operator custom list
		"http://worldpressherald.org/",        // operator custom list
	}
	for _, u := range blocked {
		res := client.TestURL(ctx, u)
		if res.Verdict != measurement.Blocked {
			t.Fatalf("%s verdict = %v, want blocked", u, res.Verdict)
		}
		if res.BlockMatch.Product != "Blue Coat" {
			t.Fatalf("%s attributed to %q, want Blue Coat", u, res.BlockMatch.Product)
		}
	}
	// Innocuous content flows.
	if res := client.TestURL(ctx, "http://global-entertainment.org/"); res.Verdict != measurement.Accessible {
		t.Fatalf("entertainment verdict = %v, want accessible", res.Verdict)
	}
}

// TestDualUseEnterpriseBaseline covers §3.2's caution: finding a product
// is not finding censorship. The Texas utility's Websense enforces an
// acceptable-use policy (adult content, gambling) but leaves political,
// media, human-rights and LGBT content alone — so its Table 4 row would
// be empty.
func TestDualUseEnterpriseBaseline(t *testing.T) {
	w := buildTestWorld(t, Options{})
	client, err := w.MeasureClient(ISPTexasUtility1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Acceptable-use blocking works and attributes to Websense.
	res := client.TestURL(ctx, "http://global-pornography.org/")
	if res.Verdict != measurement.Blocked || res.BlockMatch.Product != "Websense" {
		t.Fatalf("pornography = %v via %q", res.Verdict, res.BlockMatch.Product)
	}
	if res := client.TestURL(ctx, "http://global-gambling.org/"); res.Verdict != measurement.Blocked {
		t.Fatalf("gambling verdict = %v, want blocked", res.Verdict)
	}

	// Protected speech is untouched.
	for _, u := range []string{
		"http://global-political-reform.org/",
		"http://global-media-freedom.org/",
		"http://global-human-rights.org/",
		"http://global-lgbt.org/",
	} {
		if res := client.TestURL(ctx, u); res.Verdict != measurement.Accessible {
			t.Fatalf("%s verdict = %v, want accessible (dual-use baseline)", u, res.Verdict)
		}
	}

	// Its Table 4 row is empty: characterization finds blocking, but none
	// of it lands in the protected-speech columns.
	rep := characterize.Characterize(ctx, characterize.Run{
		Country: "US", ISP: ISPTexasUtility1, ASN: 64550,
		Global: urllist.GlobalList(),
		Client: client,
	})
	for _, col := range characterize.Table4Columns() {
		if rep.Blocks("Websense", col) {
			t.Fatalf("enterprise deployment blocks protected column %q", col)
		}
	}
	if !rep.Blocks("Websense", "pornography") {
		t.Fatal("enterprise deployment's acceptable-use blocking not recorded")
	}
}
