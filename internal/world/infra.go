package world

import (
	"fmt"
	"net/netip"

	"filtermap/internal/geo"
	"filtermap/internal/httpwire"
	"filtermap/internal/netsim"
	"filtermap/internal/products/bluecoat"
	"filtermap/internal/products/netsweeper"
	"filtermap/internal/products/smartfilter"
	"filtermap/internal/urllist"
)

// buildInfrastructure creates the research and vendor-cloud side of the
// world: lab and scan vantages, the whois service, vendor submission
// portals, and the researcher hosting range.
func (w *World) buildInfrastructure() error {
	// University of Toronto lab (§4.1's comparison vantage).
	utoronto, err := w.addAS(239, "UTORONTO - University of Toronto", "CA", "128.100.0.0/16")
	if err != nil {
		return err
	}
	utISP, err := w.Net.AddISP("UToronto", utoronto)
	if err != nil {
		return err
	}
	w.Lab, err = w.Net.AddHost(netip.MustParseAddr("128.100.50.10"), HostLab, utISP)
	if err != nil {
		return err
	}

	// Research scan vantage (the host Shodan-style sweeps run from).
	if _, err := w.addAS(237, "MERIT-AS - research network", "US", "198.108.0.0/16"); err != nil {
		return err
	}
	w.ScanVantage, err = w.Net.AddHost(netip.MustParseAddr("198.108.1.10"), HostScanVantage, nil)
	if err != nil {
		return err
	}

	// Out-of-band proxy vantage (the §6.2 submission countermeasure).
	if _, err := w.addAS(64510, "FREEPROXY-NET", "NL", "185.38.0.0/16"); err != nil {
		return err
	}
	w.ProxyVantage, err = w.Net.AddHost(netip.MustParseAddr("185.38.7.7"), "exit7.freeproxy.example", nil)
	if err != nil {
		return err
	}

	// Team Cymru-style whois service.
	if _, err := w.addAS(23028, "CYMRU-AS", "US", "38.229.0.0/16"); err != nil {
		return err
	}
	whoisHost, err := w.Net.AddHost(netip.MustParseAddr("38.229.1.1"), HostWhois, nil)
	if err != nil {
		return err
	}
	whoisL, err := whoisHost.Listen(geo.WhoisPort)
	if err != nil {
		return err
	}
	whoisSrv := &geo.WhoisServer{Table: w.ASTable}
	go whoisSrv.Serve(whoisL) //nolint:errcheck // ends with listener

	// Vendor cloud services.
	if _, err := w.addAS(64497, "BLUECOAT-CLOUD", "US", "199.91.0.0/16"); err != nil {
		return err
	}
	if err := w.serveVendorHost("199.91.1.10", HostSiteReview, bluecoat.SiteReviewHandler(w.BlueCoatDB)); err != nil {
		return err
	}
	if err := w.serveVendorHost("199.91.2.10", HostCfAuth, bluecoat.CfAuthHandler()); err != nil {
		return err
	}

	if _, err := w.addAS(64498, "MCAFEE-CLOUD", "US", "161.69.0.0/16"); err != nil {
		return err
	}
	if err := w.serveVendorHost("161.69.1.10", HostTrustedSource, smartfilter.SubmissionPortalHandler(w.SmartFilterDB)); err != nil {
		return err
	}

	if _, err := w.addAS(64499, "NETSWEEPER-INC", "CA", "66.207.0.0/16"); err != nil {
		return err
	}
	if err := w.serveVendorHost("66.207.1.10", HostTestASite, netsweeper.TestASiteHandler(w.NetsweeperDB)); err != nil {
		return err
	}
	if err := w.serveVendorHost("66.207.2.10", HostDenyPageTests, netsweeper.DenyPageTestsHandler(w.NetsweeperDB)); err != nil {
		return err
	}

	// Researcher site hosting: a popular commodity cloud (a range too
	// widely used for a vendor to block wholesale, §6.2).
	cloudAS, err := w.addAS(64496, "SIMCLOUD-HOSTING", "US", "160.153.0.0/16")
	if err != nil {
		return err
	}
	w.hostingISP, err = w.Net.AddISP("SimCloud", cloudAS)
	if err != nil {
		return err
	}
	w.nextSiteIP = netip.MustParseAddr("160.153.1.1")

	return nil
}

// serveVendorHost registers a host and serves an HTTP handler on port 80.
func (w *World) serveVendorHost(ip, name string, handler httpwire.Handler) error {
	h, err := w.Net.AddHost(netip.MustParseAddr(ip), name, nil)
	if err != nil {
		return err
	}
	l, err := h.Listen(80)
	if err != nil {
		return err
	}
	srv := &httpwire.Server{Handler: handler}
	go srv.Serve(l) //nolint:errcheck // ends with listener
	return nil
}

// allocSiteIP hands out sequential hosting addresses.
func (w *World) allocSiteIP() netip.Addr {
	ip := w.nextSiteIP
	w.nextSiteIP = w.nextSiteIP.Next()
	return ip
}

// HostSite registers a domain with the given content profile: DNS, a
// hosting IP, an origin server, and a content-directory entry.
func (w *World) HostSite(domain string, kind urllist.Kind, researchCategory string) error {
	return w.HostProfile(urllist.Profile{Domain: domain, Kind: kind, ResearchCategory: researchCategory})
}

// HostProfile hosts a fully specified content profile, including the
// outbound links of the linked synthetic web.
func (w *World) HostProfile(profile urllist.Profile) error {
	w.Dir.Add(profile)
	h, err := w.Net.AddHost(w.allocSiteIP(), profile.Domain, w.hostingISP)
	if err != nil {
		return fmt.Errorf("host %s: %w", profile.Domain, err)
	}
	l, err := h.Listen(80)
	if err != nil {
		return err
	}
	srv := &httpwire.Server{Handler: urllist.Handler(profile)}
	go srv.Serve(l) //nolint:errcheck // ends with listener
	if w.Opts.Mechanisms != nil {
		// SNI probing needs a TLS first-flight responder on 443; gated so
		// mechanism-free worlds keep their exact port surface.
		if err := serveTLSResponder(h); err != nil {
			return err
		}
	}
	return nil
}

// ProvisionTestSites stands up n fresh researcher-controlled domains of
// the given kind and returns their URLs (§4.2 step 1).
func (w *World) ProvisionTestSites(kind urllist.Kind, n int) ([]string, error) {
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		domain := w.Gen.Domain()
		if err := w.HostSite(domain, kind, ""); err != nil {
			return nil, err
		}
		urls = append(urls, "http://"+domain+"/")
	}
	return urls, nil
}

// buildListSites hosts every global- and local-list domain. Curated
// pages carry the seed links of the linked synthetic web (urllist
// .SeedLinks), the discovery crawler's entry points.
func (w *World) buildListSites() error {
	seedLinks := urllist.SeedLinks()
	seen := make(map[string]bool)
	host := func(list urllist.List) error {
		for _, e := range list.Entries {
			if seen[e.Domain] {
				continue
			}
			seen[e.Domain] = true
			p := urllist.Profile{
				Domain:           e.Domain,
				Kind:             urllist.ListContent,
				ResearchCategory: e.Category,
				Links:            seedLinks[e.Domain],
			}
			if err := w.HostProfile(p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := host(urllist.GlobalList()); err != nil {
		return err
	}
	for _, cc := range []string{"AE", "QA", "SA", "YE"} {
		if err := host(urllist.LocalList(cc)); err != nil {
			return err
		}
	}
	return nil
}

// buildLinkedWeb hosts the hidden layer of the synthetic web: hub
// directories and category-bearing sites on no curated list, reachable
// only by following links (internal/discovery's quarry).
func (w *World) buildLinkedWeb() error {
	for _, p := range urllist.HiddenSites() {
		if err := w.HostProfile(p); err != nil {
			return err
		}
	}
	return nil
}

// CuratedDomains returns the set of domains on any curated testing list
// (the global list plus every per-country local list). Discovery marks
// blocked URLs outside this set as novel.
func CuratedDomains() map[string]bool {
	out := make(map[string]bool)
	add := func(list urllist.List) {
		for _, e := range list.Entries {
			out[e.Domain] = true
		}
	}
	add(urllist.GlobalList())
	for _, cc := range []string{"AE", "QA", "SA", "YE"} {
		add(urllist.LocalList(cc))
	}
	return out
}

// netsimVisibilityForConsole is a helper kept for readability at call
// sites in deployments.go.
func (w *World) consoleVisibility() netsim.Visibility { return w.visibility() }
