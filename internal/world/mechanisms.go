package world

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"

	"filtermap/internal/httpwire"
	"filtermap/internal/measurement"
	"filtermap/internal/mechanism"
	"filtermap/internal/netsim"
	"filtermap/internal/urllist"
)

// This file stands up the multi-mechanism censorship deployments: ISPs
// that block not with an in-path HTTP middlebox but with DNS poisoning,
// TCP RST injection, or SNI-based TLS filtering. Everything is gated on
// Options.Mechanisms — a nil Mechanisms builds the exact world earlier
// snapshots hashed, byte for byte.

// MechanismOptions enables the multi-mechanism deployments.
type MechanismOptions struct {
	// Seed, when nonzero, permutes product assignment and category draws
	// independently of Options.Seed (which is used otherwise).
	Seed int64 `json:",omitempty"`
}

// MechAssignment is one (mechanism, product) pair deployed at an ISP.
type MechAssignment struct {
	Kind    mechanism.Kind
	Product string
}

// MechDeployment is the ground truth for one mechanism-censoring ISP —
// what the probes should rediscover.
type MechDeployment struct {
	ISP     string
	Country string
	ASN     int
	// Assignments lists the deployed mechanisms, primary first.
	Assignments []MechAssignment
	// BlockedDomains is the sorted censored-domain sample (drawn from the
	// global list's Table 4 categories).
	BlockedDomains []string
}

// cleanDNSTTL is the TTL honest resolvers in this world answer with. It
// deliberately matches no product's forged-record quirk.
const cleanDNSTTL = 14400

// mechISPSpec is one roster row: a country's mechanism-censoring ISP.
// base is the first two octets of its /16.
type mechISPSpec struct {
	name    string
	asn     int
	asName  string
	country string
	base    string
	kind    mechanism.Kind
}

// mechRoster is the fixed nine-ISP roster: three per mechanism. Which
// product each runs rotates with the seed; the roster itself does not.
var mechRoster = []mechISPSpec{
	// Note: PTCL (AS17557) is deliberately absent — the background-
	// installation layer already owns that AS for its SmartFilter probe
	// target, and netsim AS numbers are unique per network.
	{"Nayatel", 23674, "NAYATEL-PK Nayatel Pvt", "PK", "221.120", mechanism.KindDNS},
	{"BSNL", 9829, "BSNL-NIB National Internet Backbone", "IN", "117.96", mechanism.KindDNS},
	{"TurkTelekom", 9121, "TTNET Turk Telekomunikasyon", "TR", "212.156", mechanism.KindDNS},
	{"Rostelecom", 12389, "ROSTELECOM-AS PJSC Rostelecom", "RU", "213.59", mechanism.KindRST},
	{"TelkomIndonesia", 7713, "TELKOMNET-AS-AP PT Telekomunikasi Indonesia", "ID", "125.160", mechanism.KindRST},
	{"TOT", 23969, "TOT-NET TOT Public Company", "TH", "180.180", mechanism.KindRST},
	{"VNPT", 45899, "VNPT-AS-VN VNPT Corp", "VN", "14.160", mechanism.KindSNI},
	{"TelecomEgypt", 8452, "TE-AS Telecom Egypt", "EG", "41.32", mechanism.KindSNI},
	{"Kazakhtelecom", 9198, "KAZTELECOM-AS JSC Kazakhtelecom", "KZ", "92.46", mechanism.KindSNI},
}

// Products eligible per mechanism, in signature-table order.
var mechProductsByKind = map[mechanism.Kind][]string{
	mechanism.KindDNS: {mechanism.ProductNetsweeper, mechanism.ProductBlueCoat, mechanism.ProductSmartFilter},
	mechanism.KindRST: {mechanism.ProductNetsweeper, mechanism.ProductBlueCoat, mechanism.ProductSmartFilter},
	mechanism.KindSNI: {mechanism.ProductNetsweeper, mechanism.ProductBlueCoat, mechanism.ProductWebsense},
}

// mechHash is the deterministic draw shared by product rotation and
// category selection (FNV-64a over the seed and parts).
func mechHash(seed int64, parts ...string) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			mix(p[i])
		}
		mix(0)
	}
	return h
}

// mechSeed resolves the effective mechanism seed.
func (w *World) mechSeed() int64 {
	if w.Opts.Mechanisms != nil && w.Opts.Mechanisms.Seed != 0 {
		return w.Opts.Mechanisms.Seed
	}
	return w.Opts.Seed
}

// sinkholeAddrs is the set of forged-answer destinations; the stream
// filters must let block-page fetches to them through.
func sinkholeAddrs() map[netip.Addr]bool {
	out := make(map[netip.Addr]bool)
	for _, sig := range mechanism.DNSSignatures() {
		if sig.Sinkhole.IsValid() {
			out[sig.Sinkhole] = true
		}
	}
	return out
}

// signature lookups by product.
func dnsSigFor(product string) (mechanism.DNSSignature, bool) {
	for _, s := range mechanism.DNSSignatures() {
		if s.Product == product {
			return s, true
		}
	}
	return mechanism.DNSSignature{}, false
}

func rstSigFor(product string) (mechanism.RSTSignature, bool) {
	for _, s := range mechanism.RSTSignatures() {
		if s.Product == product {
			return s, true
		}
	}
	return mechanism.RSTSignature{}, false
}

func sniSigFor(product string) (mechanism.SNISignature, bool) {
	for _, s := range mechanism.SNISignatures() {
		if s.Product == product {
			return s, true
		}
	}
	return mechanism.SNISignature{}, false
}

// mechAssignments computes the deterministic (mechanism, product) plan
// for the whole roster: products rotate within each mechanism by seed,
// and the first ISP of each mechanism gains a secondary mechanism run by
// the same product (where that product has a signature for it) — the
// mixed deployments the acceptance demands.
func mechAssignments(seed int64) [][]MechAssignment {
	idxInKind := make(map[mechanism.Kind]int)
	out := make([][]MechAssignment, len(mechRoster))
	for i, spec := range mechRoster {
		k := idxInKind[spec.kind]
		idxInKind[spec.kind]++
		products := mechProductsByKind[spec.kind]
		rot := int(mechHash(seed, "product-rotation", string(spec.kind)) % uint64(len(products)))
		product := products[(k+rot)%len(products)]
		assigns := []MechAssignment{{Kind: spec.kind, Product: product}}
		if k == 0 {
			// Secondary mechanism for the first ISP of each kind, gated on
			// the product actually having a signature there.
			for _, sec := range secondaryKinds(spec.kind) {
				if mechProductHasKind(product, sec) {
					assigns = append(assigns, MechAssignment{Kind: sec, Product: product})
					break
				}
			}
		}
		out[i] = assigns
	}
	return out
}

// secondaryKinds is the mixing preference per primary kind.
func secondaryKinds(primary mechanism.Kind) []mechanism.Kind {
	switch primary {
	case mechanism.KindDNS:
		return []mechanism.Kind{mechanism.KindRST, mechanism.KindSNI}
	case mechanism.KindRST:
		return []mechanism.Kind{mechanism.KindSNI, mechanism.KindDNS}
	default:
		return []mechanism.Kind{mechanism.KindDNS, mechanism.KindRST}
	}
}

// mechProductHasKind reports whether product has a signature for kind.
func mechProductHasKind(product string, kind mechanism.Kind) bool {
	switch kind {
	case mechanism.KindDNS:
		_, ok := dnsSigFor(product)
		return ok
	case mechanism.KindRST:
		_, ok := rstSigFor(product)
		return ok
	case mechanism.KindSNI:
		_, ok := sniSigFor(product)
		return ok
	}
	return false
}

// mechBlockedDomains draws each ISP's censored domains: global-list
// domains from two Table 4 categories, rotated by seed and ISP index.
func mechBlockedDomains(seed int64, ispIndex int) []string {
	cats := []string{
		urllist.CatMediaFreedom, urllist.CatHumanRights, urllist.CatPoliticalReform,
		urllist.CatLGBT, urllist.CatReligiousCriticism, urllist.CatMinorityRights,
	}
	rot := int(mechHash(seed, "category-rotation") % uint64(len(cats)))
	pick := map[string]bool{
		cats[(ispIndex+rot)%len(cats)]:   true,
		cats[(ispIndex+rot+3)%len(cats)]: true,
	}
	var domains []string
	for _, e := range urllist.GlobalList().Entries {
		if pick[e.Category] {
			domains = append(domains, e.Domain)
		}
	}
	sort.Strings(domains)
	return domains
}

// buildMechanisms stands up the roster: per ISP an AS, a field tester,
// the mechanism filters with product quirks, and (for DNS deployments) a
// poisoned in-ISP resolver. Shared across ISPs: the product sinkhole
// hosts serving attributable block pages, and an honest lab resolver.
func (w *World) buildMechanisms() error {
	seed := w.mechSeed()
	assignments := mechAssignments(seed)
	sinks := sinkholeAddrs()

	// Category lookup for the sinkhole block pages.
	catFor := make(map[string]string)
	for _, e := range urllist.GlobalList().Entries {
		catFor[e.Domain] = e.Category
	}

	// Shared sinkhole hosts at the quirk addresses (one per sinkhole
	// product), serving that product's block page with the category of
	// the requested domain.
	for _, sig := range mechanism.DNSSignatures() {
		if !sig.Sinkhole.IsValid() {
			continue
		}
		if err := w.serveSinkhole(sig, catFor); err != nil {
			return err
		}
	}

	// Honest lab-side resolver (the comparison leg of the DNS probe).
	labResolver, err := w.Net.AddHost(netip.MustParseAddr("128.100.50.53"), "resolver.measurement.utoronto.example", nil)
	if err != nil {
		return err
	}
	if err := w.serveResolver(labResolver, nil, MechAssignment{}); err != nil {
		return err
	}
	w.LabResolver = labResolver.Addr()

	for i, spec := range mechRoster {
		assigns := assignments[i]
		blocked := netsim.NewDomainSet(mechBlockedDomains(seed, i)...)

		as, err := w.addAS(spec.asn, spec.asName, spec.country, spec.base+".0.0/16")
		if err != nil {
			return err
		}
		isp, err := w.Net.AddISP(spec.name, as)
		if err != nil {
			return err
		}
		tester, err := w.Net.AddHost(netip.MustParseAddr(spec.base+".20.20"), "", isp)
		if err != nil {
			return err
		}
		w.FieldHosts[spec.name] = tester

		mechs := &netsim.Mechanisms{}
		var dnsAssign MechAssignment
		for _, a := range assigns {
			switch a.Kind {
			case mechanism.KindDNS:
				dnsAssign = a
				sig, _ := dnsSigFor(a.Product)
				mechs.DNS = mechDNSFilter(sig, blocked)
			case mechanism.KindRST:
				sig, _ := rstSigFor(a.Product)
				mechs.Host = mechHostFilter(sig, blocked, sinks)
			case mechanism.KindSNI:
				sig, _ := sniSigFor(a.Product)
				mechs.SNI = mechSNIFilter(sig, blocked, sinks)
			}
		}
		isp.SetMechanisms(mechs)

		// DNS-capable deployments also run an in-ISP recursive resolver
		// the probes can query directly (resolver answers are forged the
		// same way the transparent resolution path is).
		if mechs.DNS != nil {
			resolver, err := w.Net.AddHost(netip.MustParseAddr(spec.base+".1.53"), "", isp)
			if err != nil {
				return err
			}
			if err := w.serveResolver(resolver, blocked, dnsAssign); err != nil {
				return err
			}
			w.FieldResolvers[spec.name] = resolver.Addr()
		}

		w.MechDeployments = append(w.MechDeployments, MechDeployment{
			ISP:            spec.name,
			Country:        spec.country,
			ASN:            spec.asn,
			Assignments:    assigns,
			BlockedDomains: mechBlockedDomains(seed, i),
		})
	}
	return nil
}

// mechDNSFilter builds the poisoned resolution path for one deployment.
func mechDNSFilter(sig mechanism.DNSSignature, blocked netsim.DomainSet) netsim.DNSFilter {
	return netsim.DNSFilterFunc(func(_ netip.Addr, name string) netsim.DNSVerdict {
		if !blocked.Contains(name) {
			return netsim.DNSVerdict{Action: netsim.DNSClean}
		}
		if sig.NXDomain {
			return netsim.DNSVerdict{Action: netsim.DNSNXDomain}
		}
		return netsim.DNSVerdict{Action: netsim.DNSSinkhole, Addr: sig.Sinkhole, TTL: sig.TTL}
	})
}

// mechHostFilter builds the RST injector for one deployment. Traffic to
// a sinkhole passes — the DNS leg of a mixed deployment must be able to
// serve its block page.
func mechHostFilter(sig mechanism.RSTSignature, blocked netsim.DomainSet, sinks map[netip.Addr]bool) netsim.HostFilter {
	return netsim.HostFilterFunc(func(info netsim.DialInfo, host string) netsim.StreamVerdict {
		if sinks[info.Dst] || !blocked.Contains(host) {
			return netsim.StreamVerdict{Action: netsim.StreamPass}
		}
		return netsim.StreamVerdict{
			Action:        netsim.StreamReset,
			TTL:           sig.TTL,
			Window:        sig.Window,
			Bidirectional: sig.Bidirectional,
		}
	})
}

// mechSNIFilter builds the TLS filter for one deployment. A hello that
// omits server_name (the ESNI-style probe) evades products without
// destination-IP fallback; products with BlocksWithoutSNI fall back to
// the context the injector has (the dialed hostname).
func mechSNIFilter(sig mechanism.SNISignature, blocked netsim.DomainSet, sinks map[netip.Addr]bool) netsim.SNIFilter {
	return netsim.SNIFilterFunc(func(info netsim.DialInfo, sni string, present bool) netsim.StreamVerdict {
		if sinks[info.Dst] {
			return netsim.StreamVerdict{Action: netsim.StreamPass}
		}
		if !present && !sig.BlocksWithoutSNI {
			return netsim.StreamVerdict{Action: netsim.StreamPass}
		}
		if !blocked.Contains(sni) {
			return netsim.StreamVerdict{Action: netsim.StreamPass}
		}
		if sig.Drop {
			return netsim.StreamVerdict{Action: netsim.StreamDrop}
		}
		return netsim.StreamVerdict{Action: netsim.StreamReset, TTL: sig.RSTTTL, Window: sig.RSTWindow}
	})
}

// serveSinkhole hosts one product's sinkhole at its quirk address,
// serving that product's block page for whatever domain the poisoned
// client asks for.
func (w *World) serveSinkhole(sig mechanism.DNSSignature, catFor map[string]string) error {
	h, err := w.Net.AddHost(sig.Sinkhole, "", nil)
	if err != nil {
		return err
	}
	l, err := h.Listen(80)
	if err != nil {
		return err
	}
	product := sig.Product
	srv := &httpwire.Server{Handler: httpwire.HandlerFunc(func(req *httpwire.Request) *httpwire.Response {
		host := strings.ToLower(req.Host())
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		body := sinkholePage(product, host, catFor[host])
		hdr := httpwire.NewHeader("Content-Type", "text/html")
		return httpwire.NewResponse(403, hdr, []byte(body))
	})}
	go srv.Serve(l) //nolint:errcheck // ends with listener
	return nil
}

// sinkholePage renders the product-marked block page a sinkhole serves —
// the markers blockpage.DefaultPatterns attributes, plus the category
// paragraph the classifier extracts.
func sinkholePage(product, domain, category string) string {
	if category == "" {
		category = "uncategorized"
	}
	switch product {
	case mechanism.ProductNetsweeper:
		return fmt.Sprintf(`<html><head><title>Web Page Blocked</title></head><body>
<h1>This page has been denied</h1>
<p>Access to %s is not permitted on this network.</p>
<p>Category: %s</p>
<p>Powered by Netsweeper</p>
</body></html>`, domain, category)
	case mechanism.ProductBlueCoat:
		return fmt.Sprintf(`<html><head><title>Access Denied</title></head><body>
<p>Your request was denied because of its content categorization.</p>
<p>Category: %s</p>
<p>Host: %s</p>
</body></html>`, category, domain)
	default:
		return fmt.Sprintf(`<html><body><p>Blocked: %s</p><p>Category: %s</p></body></html>`, domain, category)
	}
}

// serveResolver runs a TCP DNS resolver on h:53. With a nil blocked set
// it answers honestly; otherwise blocked names get the deployment's
// forged answer and everything else the truth.
func (w *World) serveResolver(h *netsim.Host, blocked netsim.DomainSet, assign MechAssignment) error {
	l, err := h.Listen(53)
	if err != nil {
		return err
	}
	var sig mechanism.DNSSignature
	if blocked != nil {
		sig, _ = dnsSigFor(assign.Product)
	}
	resolve := func(name string) (int, []mechanism.Answer) {
		name = strings.ToLower(strings.TrimSuffix(name, "."))
		if blocked != nil && blocked.Contains(name) {
			if sig.NXDomain {
				return mechanism.RCodeNXDomain, nil
			}
			return mechanism.RCodeNoError, []mechanism.Answer{{Name: name, TTL: sig.TTL, Addr: sig.Sinkhole}}
		}
		addr, err := w.Net.Resolve(name)
		if err != nil {
			return mechanism.RCodeNXDomain, nil
		}
		return mechanism.RCodeNoError, []mechanism.Answer{{Name: name, TTL: cleanDNSTTL, Addr: addr}}
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go mechanism.ServeDNSConn(c, resolve)
		}
	}()
	return nil
}

// serveTLSResponder runs the minimal TLS first-flight responder the SNI
// probes need on h:443: read one ClientHello, answer one ServerHello.
// Anything that is not TLS is closed immediately (the banner scanner's
// HTTP probes must not hang here).
func serveTLSResponder(h *netsim.Host) error {
	_, err := h.Serve(443, netsim.Public, netsim.HandlerFunc(func(c net.Conn, _ netsim.DialInfo) {
		defer c.Close()
		var buf []byte
		tmp := make([]byte, 2048)
		for {
			if len(buf) > 0 && buf[0] != mechanism.RecordHandshake {
				return
			}
			if n, ok := mechanism.RecordLength(buf); ok && len(buf) >= n {
				break
			}
			if len(buf) > 1<<16 {
				return
			}
			n, err := c.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				return
			}
		}
		if _, _, err := mechanism.ParseClientHello(buf); err != nil {
			return
		}
		c.Write(mechanism.BuildServerHello()) //nolint:errcheck // peer may be gone
	}))
	return err
}

// MechanismSurveyTarget pairs one mechanism deployment's location with
// the measurement results probed from inside it — the mechanism analog
// of TargetDiscovery.
type MechanismSurveyTarget struct {
	ISP     string
	Country string
	ASN     int
	Results []measurement.MechanismResult
}

// MechanismRosterISPs lists the mechanism roster's ISP names in roster
// order, without building a world (request validation in fmserve).
func MechanismRosterISPs() []string {
	out := make([]string, len(mechRoster))
	for i, spec := range mechRoster {
		out[i] = spec.name
	}
	return out
}

// RunMechanismSurvey probes every mechanism-censoring ISP's blocked
// domains with the per-mechanism probe battery and returns one target per
// deployment, in roster order. The world must have been built with
// Options.Mechanisms.
func (w *World) RunMechanismSurvey(ctx context.Context) ([]MechanismSurveyTarget, error) {
	return w.RunMechanismSurveyFor(ctx, nil)
}

// RunMechanismSurveyFor restricts the survey to the named ISPs (empty =
// all deployments).
func (w *World) RunMechanismSurveyFor(ctx context.Context, isps []string) ([]MechanismSurveyTarget, error) {
	if len(w.MechDeployments) == 0 {
		return nil, fmt.Errorf("world: mechanism survey requires a world built with Options.Mechanisms")
	}
	want := make(map[string]bool, len(isps))
	for _, isp := range isps {
		want[isp] = true
	}
	var out []MechanismSurveyTarget
	for _, d := range w.MechDeployments {
		if len(want) > 0 && !want[d.ISP] {
			continue
		}
		client, err := w.MeasureClient(d.ISP)
		if err != nil {
			return nil, err
		}
		urls := make([]string, 0, len(d.BlockedDomains))
		for _, dom := range d.BlockedDomains {
			urls = append(urls, "http://"+dom+"/")
		}
		out = append(out, MechanismSurveyTarget{
			ISP:     d.ISP,
			Country: d.Country,
			ASN:     d.ASN,
			Results: client.TestListMechanisms(ctx, urls),
		})
	}
	return out, nil
}
