package world

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"filtermap/internal/mechanism"
	"filtermap/internal/store"
)

func buildMechWorld(t *testing.T, seed int64) *World {
	t.Helper()
	w, err := Build(Options{Seed: seed, Mechanisms: &MechanismOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestMechanismRosterShape(t *testing.T) {
	w := buildMechWorld(t, 42)
	if len(w.MechDeployments) != len(mechRoster) {
		t.Fatalf("got %d deployments, want %d", len(w.MechDeployments), len(mechRoster))
	}
	perKind := map[mechanism.Kind]int{}
	mixed := 0
	for _, d := range w.MechDeployments {
		if len(d.Assignments) == 0 || len(d.BlockedDomains) == 0 {
			t.Fatalf("deployment %s incomplete: %+v", d.ISP, d)
		}
		if len(d.Assignments) > 1 {
			mixed++
		}
		for _, a := range d.Assignments {
			perKind[a.Kind]++
			if !mechProductHasKind(a.Product, a.Kind) {
				t.Fatalf("%s assigned %s/%s with no signature", d.ISP, a.Kind, a.Product)
			}
		}
	}
	for _, k := range []mechanism.Kind{mechanism.KindDNS, mechanism.KindRST, mechanism.KindSNI} {
		if perKind[k] < 3 {
			t.Fatalf("only %d deployments of kind %s, want >= 3", perKind[k], k)
		}
	}
	if mixed < 2 {
		t.Fatalf("only %d mixed deployments, want >= 2", mixed)
	}
	// DNS-capable ISPs expose an in-ISP resolver; the lab resolver exists.
	if !w.LabResolver.IsValid() {
		t.Fatal("lab resolver missing")
	}
	for _, d := range w.MechDeployments {
		hasDNS := false
		for _, a := range d.Assignments {
			hasDNS = hasDNS || a.Kind == mechanism.KindDNS
		}
		if _, ok := w.FieldResolvers[d.ISP]; ok != hasDNS {
			t.Fatalf("%s: resolver presence %v, dns assignment %v", d.ISP, ok, hasDNS)
		}
	}
}

func TestMechanismRosterDeterministic(t *testing.T) {
	a := buildMechWorld(t, 7)
	b := buildMechWorld(t, 7)
	if !reflect.DeepEqual(a.MechDeployments, b.MechDeployments) {
		t.Fatal("same seed produced different rosters")
	}
	c := buildMechWorld(t, 8)
	if reflect.DeepEqual(a.MechDeployments, c.MechDeployments) {
		t.Fatal("different seeds produced identical rosters (rotation inert)")
	}
}

func TestMechanismProbesRediscoverGroundTruth(t *testing.T) {
	w := buildMechWorld(t, 42)
	ctx := context.Background()
	concludedKinds := map[mechanism.Kind]int{}
	for _, d := range w.MechDeployments {
		client, err := w.MeasureClient(d.ISP)
		if err != nil {
			t.Fatal(err)
		}
		r := client.TestURLMechanisms(ctx, "http://"+d.BlockedDomains[0]+"/")
		if !r.Censored() {
			t.Fatalf("%s: %s not censored (verdict %s)", d.ISP, d.BlockedDomains[0], r.Verdict)
		}
		concludedKinds[r.Mechanism]++
		// The concluded mechanism and product must be one of the ISP's
		// actual deployments.
		found := false
		for _, a := range d.Assignments {
			if a.Kind == r.Mechanism && a.Product == r.MechProduct {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: concluded %s/%s, deployed %+v (evidence %q)",
				d.ISP, r.Mechanism, r.MechProduct, d.Assignments, r.MechEvidence)
		}
		// A clean URL from the same vantage stays clean.
		clean := client.TestURLMechanisms(ctx, "http://global-gambling.org/")
		if isBlockedDomain(d.BlockedDomains, "global-gambling.org") {
			t.Fatal("test assumes global-gambling.org is never in a mechanism blocklist (Table 4 categories only)")
		}
		if clean.Censored() {
			t.Fatalf("%s: clean URL censored via %s/%s", d.ISP, clean.Mechanism, clean.MechProduct)
		}
	}
	for _, k := range []mechanism.Kind{mechanism.KindDNS, mechanism.KindRST, mechanism.KindSNI} {
		if concludedKinds[k] == 0 {
			t.Fatalf("no deployment concluded as %s: %+v", k, concludedKinds)
		}
	}
}

func TestMechanismMixedDeploymentShowsBothProbes(t *testing.T) {
	w := buildMechWorld(t, 42)
	// The first DNS ISP always mixes in an RST leg (every DNS-capable
	// product has an RST signature).
	var target *MechDeployment
	for i := range w.MechDeployments {
		d := &w.MechDeployments[i]
		if len(d.Assignments) == 2 &&
			d.Assignments[0].Kind == mechanism.KindDNS &&
			d.Assignments[1].Kind == mechanism.KindRST {
			target = d
			break
		}
	}
	if target == nil {
		t.Fatal("no dns+rst mixed deployment in roster")
	}
	client, err := w.MeasureClient(target.ISP)
	if err != nil {
		t.Fatal(err)
	}
	r := client.TestURLMechanisms(context.Background(), "http://"+target.BlockedDomains[0]+"/")
	var sawDNS, sawRST bool
	for _, p := range r.Probes {
		switch p.Kind {
		case mechanism.KindDNS:
			sawDNS = p.Detected
		case mechanism.KindRST:
			sawRST = p.Detected
		}
	}
	if !sawDNS || !sawRST {
		t.Fatalf("mixed deployment probes: dns=%v rst=%v (%+v)", sawDNS, sawRST, r.Probes)
	}
	if r.Mechanism != mechanism.KindDNS {
		t.Fatalf("mixed dns+rst concluded %s, want dns (the block page path)", r.Mechanism)
	}
}

func TestMechanismFreeWorldHasNoMechanismSurface(t *testing.T) {
	w, err := Build(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(w.MechDeployments) != 0 || len(w.FieldResolvers) != 0 || w.LabResolver.IsValid() {
		t.Fatalf("mechanism-free world grew mechanism state: %+v", w.MechDeployments)
	}
}

func isBlockedDomain(list []string, domain string) bool {
	for _, d := range list {
		if d == domain {
			return true
		}
	}
	return false
}

// TestMechanismOptionsOmittedFromConfigHash pins the snapshot/cache
// compatibility contract: a mechanism-free world marshals (and hashes)
// exactly as it did before the Mechanisms option existed, so stored
// content IDs and fmserve cache keys from older runs stay valid.
func TestMechanismOptionsOmittedFromConfigHash(t *testing.T) {
	plain, err := json.Marshal(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "Mechanisms") {
		t.Fatalf("zero Options leaks the Mechanisms key: %s", plain)
	}
	base := store.ConfigHash(Options{})
	if got := store.ConfigHash(Options{Mechanisms: nil}); got != base {
		t.Fatalf("explicit nil Mechanisms changed the hash: %s != %s", got, base)
	}
	if got := store.ConfigHash(Options{Mechanisms: &MechanismOptions{}}); got == base {
		t.Fatal("enabling Mechanisms must change the config hash")
	}
}
