//go:build race

package world

// raceEnabled reports whether the race detector is compiled in; memory
// ceilings are only meaningful without its shadow-memory overhead.
const raceEnabled = true
