package world

import (
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"

	"filtermap/internal/geo"
	"filtermap/internal/netsim"
	"filtermap/internal/urllist"
)

// Scale profile names (Options.Scale).
const (
	// ScaleSmall is the handcrafted paper world alone — the default.
	// "" and "small" are synonyms, byte-identical to every golden.
	ScaleSmall = "small"
	// ScaleCity adds ~1.5k synthetic hosts across 48 ISPs: large enough
	// to exercise lazy materialization, small enough for -race CI runs.
	ScaleCity = "city"
	// ScaleNation adds ~100k synthetic hosts across 2200 ISPs: the
	// population scale the paper's method targets in the wild.
	ScaleNation = "nation"
)

// scaleProfile parameterizes the synthetic population.
type scaleProfile struct {
	isps         int
	hostMin      int // hosts per ISP: hostMin..hostMax inclusive
	hostMax      int
	consoleEvery int // every Nth ISP exposes a real product console
	decoyEvery   int // every Nth ISP hosts a keyword decoy page
}

var scaleProfiles = map[string]scaleProfile{
	ScaleCity:   {isps: 48, hostMin: 16, hostMax: 48, consoleEvery: 12, decoyEvery: 8},
	ScaleNation: {isps: 2200, hostMin: 32, hostMax: 64, consoleEvery: 64, decoyEvery: 48},
}

// scaleCountries are the countries synthetic ISPs are drawn from: the
// same set the handcrafted world already populates, so the synthetic
// population widens existing country cohorts instead of inventing new
// ones.
var scaleCountries = []string{
	"AE", "AR", "CL", "FI", "IL", "LB", "PH", "PK",
	"QA", "SA", "SE", "SY", "TH", "TW", "US", "YE",
}

// scaleISPFlavors season synthetic ISP names.
var scaleISPFlavors = []string{
	"Regional Telecom", "Metro Cable", "National Broadband", "City Fiber",
	"Valley Networks", "Coastal Internet", "Highland Online", "Delta Comm",
}

// scaleConsoleProducts rotates across console-bearing ISPs.
var scaleConsoleProducts = []string{"bluecoat", "netsweeper", "websense", "smartfilter"}

// Synthetic address plan: ISP i owns the /20 at 240.0.0.0 + (i<<12),
// inside the reserved class E block (240.0.0.0/4), which the
// handcrafted world never touches. Host j of ISP i sits at prefix
// offset 16+j (offsets 0..15 are reserved, router-style).
const (
	scaleBaseU32    = 0xF0_00_00_00 // 240.0.0.0
	scalePrefixBits = 20
	scaleHostOffset = 16
)

// purpose tags keep the per-(seed, ispIndex, hostIndex) hash streams
// independent.
const (
	tagCountry = iota + 1
	tagHosts
	tagFlavor
	tagDark
	tagTemplate
	tagPort
)

// splitmix64 is the avalanche core of the derivation hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// scaleRealm implements netsim.Realm: the synthetic population as a
// pure function of (worldSeed, ispIndex, hostIndex). Everything an
// unmaterialized host exposes — its existence, names, whois and geo
// records — is answered from these derivations; dialing an address
// materializes its whole ISP through the ordinary world-construction
// paths.
type scaleRealm struct {
	w       *World
	profile scaleProfile
	seed    uint64

	mu      sync.Mutex
	ispDone []bool

	templates [][]byte // canned HTTP responses for generic hosts
	decoyBody string
}

// mix derives an independent hash stream from the world seed and the
// given coordinates.
func (r *scaleRealm) mix(parts ...uint64) uint64 {
	h := splitmix64(r.seed ^ 0x66_69_6c_74_65_72_6d_61) // "filterma"
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

func newScaleRealm(w *World, profile scaleProfile) *scaleRealm {
	r := &scaleRealm{
		w:       w,
		profile: profile,
		seed:    uint64(w.Opts.Seed),
		ispDone: make([]bool, profile.isps),
	}
	r.templates = buildScaleTemplates()
	r.decoyBody = fmt.Sprintf(`<h1>Filtering field notes</h1>
<p>Lab notes comparing ProxySG consoles, the webadmin deny flow and
blockpage.cgi styles across campus deployments. Sample captures from
%s and %s are archived for the methods class.</p>`,
		urllist.SyntheticDomain(r.seed, 0), urllist.SyntheticDomain(r.seed, 1))
	return r
}

// --- pure derivations ---------------------------------------------------

func (r *scaleRealm) ispBaseU32(i int) uint32 {
	return scaleBaseU32 + uint32(i)<<(32-scalePrefixBits)
}

func (r *scaleRealm) ispPrefix(i int) netip.Prefix {
	return netip.PrefixFrom(u32Addr(r.ispBaseU32(i)), scalePrefixBits)
}

func (r *scaleRealm) ispASN(i int) int { return 3_000_000 + i }

func (r *scaleRealm) ispCountry(i int) string {
	return scaleCountries[r.mix(tagCountry, uint64(i))%uint64(len(scaleCountries))]
}

func (r *scaleRealm) ispName(i int) string {
	flavor := scaleISPFlavors[r.mix(tagFlavor, uint64(i))%uint64(len(scaleISPFlavors))]
	return fmt.Sprintf("SYN-%s-%04d %s", r.ispCountry(i), i, flavor)
}

func (r *scaleRealm) hostCount(i int) int {
	span := uint64(r.profile.hostMax - r.profile.hostMin + 1)
	return r.profile.hostMin + int(r.mix(tagHosts, uint64(i))%span)
}

func (r *scaleRealm) hostAddr(i, j int) netip.Addr {
	return u32Addr(r.ispBaseU32(i) + scaleHostOffset + uint32(j))
}

func (r *scaleRealm) hasConsole(i int) bool { return i%r.profile.consoleEvery == 0 }
func (r *scaleRealm) hasDecoy(i int) bool   { return i%r.profile.decoyEvery == 0 }

func (r *scaleRealm) consoleProduct(i int) string {
	return scaleConsoleProducts[(i/r.profile.consoleEvery)%len(scaleConsoleProducts)]
}

// hostName returns the DNS name for host j of ISP i ("" for the
// unnamed generic population).
func (r *scaleRealm) hostName(i, j int) string {
	cc := strings.ToLower(r.ispCountry(i))
	switch {
	case j == 0:
		return fmt.Sprintf("gw.synth%04d.example.%s", i, cc)
	case j == 1 && r.hasConsole(i):
		return fmt.Sprintf("proxy.synth%04d.example.%s", i, cc)
	case j == 2 && r.hasDecoy(i):
		return fmt.Sprintf("www.synth%04d.example.%s", i, cc)
	default:
		return ""
	}
}

// ispIndexOf maps a realm address back to (ispIndex, hostIndex).
func (r *scaleRealm) indexOf(addr netip.Addr) (i, j int, ok bool) {
	if !addr.Is4() {
		return 0, 0, false
	}
	u := addrU32(addr)
	if u < scaleBaseU32 {
		return 0, 0, false
	}
	i = int((u - scaleBaseU32) >> (32 - scalePrefixBits))
	if i >= r.profile.isps {
		return 0, 0, false
	}
	off := int(u & ((1 << (32 - scalePrefixBits)) - 1))
	j = off - scaleHostOffset
	if j < 0 || j >= r.hostCount(i) {
		return 0, 0, false
	}
	return i, j, true
}

// generic host shape: a quarter of the generic population is dark.
func (r *scaleRealm) genericDark(i, j int) bool {
	return r.mix(tagDark, uint64(i), uint64(j))%4 == 0
}

func (r *scaleRealm) genericTemplate(i, j int) int {
	return int(r.mix(tagTemplate, uint64(i), uint64(j)) % uint64(len(r.templates)))
}

func (r *scaleRealm) genericPort(i, j int) uint16 {
	if r.mix(tagPort, uint64(i), uint64(j))%5 == 0 {
		return 8080
	}
	return 80
}

// TotalHosts sums the deterministic per-ISP host counts.
func (r *scaleRealm) TotalHosts() int {
	total := 0
	for i := 0; i < r.profile.isps; i++ {
		total += r.hostCount(i)
	}
	return total
}

// --- netsim.Realm -------------------------------------------------------

// Contains implements netsim.Realm.
func (r *scaleRealm) Contains(addr netip.Addr) bool {
	_, _, ok := r.indexOf(addr)
	return ok
}

// Addrs implements netsim.Realm: every synthetic address, sorted.
// ISP index ascends with the prefix base and host index with the
// offset, so generation order is already address order.
func (r *scaleRealm) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, r.TotalHosts())
	for i := 0; i < r.profile.isps; i++ {
		n := r.hostCount(i)
		for j := 0; j < n; j++ {
			out = append(out, r.hostAddr(i, j))
		}
	}
	return out
}

// Resolve implements netsim.Realm for the synthetic namespace
// ({gw,proxy,www}.synthNNNN.example.cc).
func (r *scaleRealm) Resolve(name string) (netip.Addr, bool) {
	role, i, ok := parseSynthName(name)
	if !ok || i >= r.profile.isps {
		return netip.Addr{}, false
	}
	var j int
	switch role {
	case "gw":
		j = 0
	case "proxy":
		j = 1
	case "www":
		j = 2
	default:
		return netip.Addr{}, false
	}
	// The name only exists if the derivation actually assigns it.
	if r.hostName(i, j) != strings.ToLower(name) {
		return netip.Addr{}, false
	}
	return r.hostAddr(i, j), true
}

// ReverseLookup implements netsim.Realm.
func (r *scaleRealm) ReverseLookup(addr netip.Addr) (string, bool) {
	i, j, ok := r.indexOf(addr)
	if !ok {
		return "", false
	}
	if name := r.hostName(i, j); name != "" {
		return name, true
	}
	return "", false
}

// Materialize implements netsim.Realm: one call builds the whole ISP
// the address belongs to (AS, ISP, every host, listeners), through
// the same registration paths the handcrafted world uses. Called
// under the network's materialization lock.
func (r *scaleRealm) Materialize(addr netip.Addr) error {
	i, _, ok := r.indexOf(addr)
	if !ok {
		return fmt.Errorf("world: %s outside scale realm", addr)
	}
	r.mu.Lock()
	done := r.ispDone[i]
	if !done {
		r.ispDone[i] = true
	}
	r.mu.Unlock()
	if done {
		return nil
	}
	return r.materializeISP(i)
}

func (r *scaleRealm) materializeISP(i int) error {
	w := r.w
	as, err := w.Net.AddAS(r.ispASN(i), r.ispName(i), r.ispCountry(i), r.ispPrefix(i))
	if err != nil {
		return err
	}
	isp, err := w.Net.AddISP(r.ispName(i), as)
	if err != nil {
		return err
	}
	n := r.hostCount(i)
	for j := 0; j < n; j++ {
		host, err := w.Net.AddHost(r.hostAddr(i, j), r.hostName(i, j), isp)
		if err != nil {
			return err
		}
		switch {
		case j == 0:
			// Gateway: named but dark, like most infrastructure routers.
		case j == 1 && r.hasConsole(i):
			if err := w.installBackgroundProduct(r.consoleProduct(i), host); err != nil {
				return err
			}
		case j == 2 && r.hasDecoy(i):
			if err := r.serveDecoy(host); err != nil {
				return err
			}
		case r.genericDark(i, j):
			// Dark generic host: exists, answers nothing.
		default:
			resp := r.templates[r.genericTemplate(i, j)]
			if _, err := host.ServeHandler(r.genericPort(i, j), netsim.Public, cannedHandler(resp)); err != nil {
				return err
			}
		}
	}
	return nil
}

// serveDecoy mounts the keyword decoy page: product vocabulary with
// no product behind it, the false-positive pressure §3.1's validation
// stage exists to absorb.
func (r *scaleRealm) serveDecoy(host *netsim.Host) error {
	resp := cannedResponse("nginx/1.2.1", "Filtering field notes", r.decoyBody)
	_, err := host.ServeHandler(80, netsim.Public, cannedHandler(resp))
	return err
}

// --- whois / geo fallbacks ----------------------------------------------

// whoisFallback answers IP→ASN queries for unmaterialized synthetic
// space, identical to the record materialization would register.
func (r *scaleRealm) whoisFallback(addr netip.Addr) (geo.ASRecord, bool) {
	i, _, ok := r.indexOf(addr)
	if !ok {
		return geo.ASRecord{}, false
	}
	return geo.ASRecord{
		ASN:      r.ispASN(i),
		Name:     r.ispName(i),
		Country:  r.ispCountry(i),
		Registry: "assigned",
		Prefix:   r.ispPrefix(i),
	}, true
}

// geoFallback answers geolocation for unmaterialized synthetic space.
func (r *scaleRealm) geoFallback(addr netip.Addr) (string, bool) {
	i, _, ok := r.indexOf(addr)
	if !ok {
		return "", false
	}
	return r.ispCountry(i), true
}

// --- world wiring -------------------------------------------------------

// buildScale attaches the synthetic population selected by
// Options.Scale. The default ("", "small") attaches nothing, keeping
// every existing golden byte-for-byte.
func (w *World) buildScale() error {
	switch w.Opts.Scale {
	case "", ScaleSmall:
		return nil
	}
	profile, ok := scaleProfiles[w.Opts.Scale]
	if !ok {
		return fmt.Errorf("world: unknown scale %q (want %s, %s or %s)",
			w.Opts.Scale, ScaleSmall, ScaleCity, ScaleNation)
	}
	r := newScaleRealm(w, profile)
	w.scale = r
	w.Net.SetRealm(r)
	// Whois and geolocation answer for the whole synthetic space from
	// the same pure derivations, so an unmaterialized host geolocates
	// exactly like a materialized one.
	w.GeoDB.SetFallback(r.geoFallback)
	w.ASTable.SetFallback(r.whoisFallback)
	if w.Opts.EagerScale {
		for i := 0; i < profile.isps; i++ {
			if err := r.Materialize(r.hostAddr(i, 0)); err != nil {
				return fmt.Errorf("world: eager scale: %w", err)
			}
		}
	}
	return nil
}

// ScaleHosts reports the synthetic population size (0 at the default
// profile).
func (w *World) ScaleHosts() int {
	if w.scale == nil {
		return 0
	}
	return w.scale.TotalHosts()
}

// ScaleISPs reports the synthetic ISP count (0 at the default profile).
func (w *World) ScaleISPs() int {
	if w.scale == nil {
		return 0
	}
	return w.scale.profile.isps
}

// --- canned HTTP plumbing -----------------------------------------------

// cannedResponse renders a complete HTTP response once; every host
// sharing the template serves the same backing bytes.
func cannedResponse(server, title, body string) []byte {
	page := "<!DOCTYPE html>\n<html><head><title>" + title + "</title></head>\n<body>" + body + "</body></html>\n"
	return []byte(fmt.Sprintf(
		"HTTP/1.0 200 OK\r\nContent-Type: text/html; charset=utf-8\r\nServer: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		server, len(page), page))
}

// cannedHandler serves a fixed response to every connection: the
// cheapest possible listener for the generic synthetic population.
// The in-memory pipe buffers writes, so the response can be written
// without draining the request first.
func cannedHandler(resp []byte) netsim.Handler {
	return netsim.HandlerFunc(func(conn net.Conn, _ netsim.DialInfo) {
		defer conn.Close()
		conn.Write(resp) //nolint:errcheck // peer may already be gone
	})
}

// buildScaleTemplates renders the generic banner set: the ordinary
// services a wide scan mostly finds, none carrying product vocabulary.
func buildScaleTemplates() [][]byte {
	specs := []struct{ server, title, body string }{
		{"nginx/1.2.1", "Welcome to nginx!", "<h1>Welcome to nginx!</h1><p>If you see this page, the nginx web server is successfully installed.</p>"},
		{"Apache/2.2.22 (Debian)", "It works!", "<h1>It works!</h1><p>This is the default web page for this server.</p>"},
		{"Microsoft-IIS/7.5", "Under Construction", "<h1>Under Construction</h1><p>The site you are trying to reach is being built.</p>"},
		{"lighttpd/1.4.28", "Index of /", "<h1>Index of /</h1><ul><li>pub/</li><li>incoming/</li></ul>"},
		{"RomPager/4.07 UPnP/1.0", "Router Login", "<h1>Residential Gateway</h1><form>PIN login required.</form>"},
		{"GoAhead-Webs", "Printer Status", "<h1>LaserJet Status</h1><p>Toner OK. Trays loaded.</p>"},
		{"Apache/2.2.15 (CentOS)", "Webmail Login", "<h1>Webmail</h1><form>Username / password.</form>"},
		{"MiniServ/1.580", "Hosting Panel", "<h1>Control Panel</h1><p>Sign in to manage your server.</p>"},
	}
	out := make([][]byte, len(specs))
	for i, s := range specs {
		out[i] = cannedResponse(s.server, s.title, s.body)
	}
	return out
}

// parseSynthName splits "{role}.synthNNNN.example.cc" into its role
// and ISP index.
func parseSynthName(name string) (role string, isp int, ok bool) {
	parts := strings.Split(strings.ToLower(name), ".")
	if len(parts) != 4 || parts[2] != "example" {
		return "", 0, false
	}
	var i int
	if _, err := fmt.Sscanf(parts[1], "synth%04d", &i); err != nil || i < 0 {
		return "", 0, false
	}
	return parts[0], i, true
}

// --- address helpers ----------------------------------------------------

func u32Addr(u uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}

func addrU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
