package world

import (
	"context"
	"fmt"
	"testing"

	"filtermap/internal/engine"
)

// The world-scaling benchmarks behind BENCH_world.json (DESIGN.md §16):
// cold-dial materialization cost, live-heap per 10k materialized hosts,
// and the full identify scan lazy vs eager at 1 and 8 workers.
// Regenerate the committed JSON with `make bench-world`.

// BenchmarkScaleColdDial measures whole-ISP materialization through the
// dial path: each iteration dials the gateway of a never-touched
// nation-profile ISP, registering its ~48 hosts, listeners and AS. The
// world is rebuilt (outside the timer) when a run exhausts the 2200
// cold ISPs.
func BenchmarkScaleColdDial(b *testing.B) {
	ctx := context.Background()
	var w *World
	probeIdx := 0
	rebuild := func() {
		if w != nil {
			w.Close()
		}
		var err error
		w, err = Build(Options{Scale: ScaleNation})
		if err != nil {
			b.Fatal(err)
		}
		probeIdx = 0
	}
	rebuild()
	defer func() { w.Close() }()
	probe := w.Net.Hosts()[0]

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if probeIdx >= w.scale.profile.isps {
			b.StopTimer()
			rebuild()
			probe = w.Net.Hosts()[0]
			b.StartTimer()
		}
		if c, err := probe.Dial(ctx, w.scale.hostAddr(probeIdx, 0), 80); err == nil {
			c.Close()
		}
		probeIdx++
	}
}

// BenchmarkScaleMemoryPer10kHosts materializes nation-profile ISPs
// until 10k hosts are live and reports the live-heap growth, the
// number the interned index and compact geo tables exist to keep flat.
func BenchmarkScaleMemoryPer10kHosts(b *testing.B) {
	ctx := context.Background()
	var perTenK float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := Build(Options{Scale: ScaleNation})
		if err != nil {
			b.Fatal(err)
		}
		probe := w.Net.Hosts()[0]
		before := measuredHeap()
		b.StartTimer()

		hosts := 0
		for isp := 0; hosts < 10_000; isp++ {
			if c, err := probe.Dial(ctx, w.scale.hostAddr(isp, 0), 80); err == nil {
				c.Close()
			}
			hosts += w.scale.hostCount(isp)
		}

		b.StopTimer()
		perTenK = float64(measuredHeap()-before) / float64(hosts) * 10_000
		w.Close()
		b.StartTimer()
	}
	b.ReportMetric(perTenK, "heapB/10khosts")
}

// BenchmarkScaleFullScan runs the full identify pipeline over the city
// profile (handcrafted world + 1526 synthetic hosts), lazy vs eager at
// 1 and 8 workers. Lazy pays materialization inside the scan; eager
// pays it at build time (outside the timer) — the gap is the cost the
// on-demand path amortizes.
func BenchmarkScaleFullScan(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"lazy", false}, {"eager", true}} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, workers), func(b *testing.B) {
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w, err := Build(Options{Scale: ScaleCity, EagerScale: mode.eager},
						engine.WithWorkers(workers))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := w.RunIdentification(ctx); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					w.Close()
					b.StartTimer()
				}
			})
		}
	}
}
