package world

import (
	"context"
	"runtime"
	"testing"
)

// TestScaleNationLazyMemoryCeiling is the accidental-eager regression
// guard: probing 1% of a nation-scale world must materialize only the
// ISPs those addresses belong to, and the heap growth must stay under a
// pinned ceiling. A full eager build of the same world costs hundreds
// of MB; the lazy 1% costs a few.
func TestScaleNationLazyMemoryCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("heap ceiling is meaningless under the race detector's shadow memory")
	}

	w := buildScaleWorld(t, Options{Scale: ScaleNation})
	baseHosts := len(w.Net.Hosts())
	probe := w.Net.Hosts()[0]

	addrs := w.scale.Addrs()
	n := len(addrs) / 100 // 1% of the population, first ISPs first

	heapBefore := measuredHeap()
	ctx := context.Background()
	for _, addr := range addrs[:n] {
		if c, err := probe.Dial(ctx, addr, 80); err == nil {
			c.Close()
		}
	}
	heapAfter := measuredHeap()

	// Materialization is whole-ISP, so the registered population may
	// overshoot the probed prefix by at most one ISP's worth of hosts.
	registered := len(w.Net.Hosts()) - baseHosts
	if max := n + w.scale.profile.hostMax; registered > max {
		t.Fatalf("probing %d addresses registered %d hosts (max %d): materialization is not lazy",
			n, registered, max)
	}
	if registered < n {
		t.Fatalf("probing %d addresses registered only %d hosts", n, registered)
	}

	// Pinned ceiling: ~1.1k materialized hosts plus listener and realm
	// bookkeeping measure ~2-3 MB in practice; 32 MB leaves room for
	// allocator noise while still failing fast if the whole 105k-host
	// population materializes (hundreds of MB).
	const ceiling = 32 << 20
	if grew := int64(heapAfter) - int64(heapBefore); grew > ceiling {
		t.Fatalf("heap grew %d bytes materializing 1%% of the nation world, ceiling %d", grew, int64(ceiling))
	}
}

// measuredHeap returns HeapAlloc after a forced collection, so the two
// samples bracket live data rather than garbage.
func measuredHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
