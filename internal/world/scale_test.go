package world

import (
	"context"
	"strings"
	"testing"
)

// Pinned synthetic-population sizes at the default world seed (0).
// These are pure functions of (seed, profile); a change here means the
// derivation hash moved and every scale golden is invalid.
const (
	cityHostsSeed0   = 1526
	nationHostsSeed0 = 105926
)

func buildScaleWorld(t *testing.T, opts Options) *World {
	t.Helper()
	w, err := Build(opts)
	if err != nil {
		t.Fatalf("Build(%+v): %v", opts, err)
	}
	t.Cleanup(w.Close)
	return w
}

// TestScaleDefaultAddsNothing pins the compatibility contract: the
// default profile ("" and its synonym "small") attaches no realm, so
// every existing golden stays byte-for-byte.
func TestScaleDefaultAddsNothing(t *testing.T) {
	base := buildScaleWorld(t, Options{})
	small := buildScaleWorld(t, Options{Scale: ScaleSmall})

	if got := base.ScaleHosts(); got != 0 {
		t.Fatalf("default world ScaleHosts = %d, want 0", got)
	}
	if got := small.ScaleHosts(); got != 0 {
		t.Fatalf(`Scale:"small" world ScaleHosts = %d, want 0`, got)
	}
	a, b := base.Net.Addrs(), small.Net.Addrs()
	if len(a) != len(b) {
		t.Fatalf("address space diverged: %d vs %d hosts", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Addrs[%d] = %s vs %s", i, a[i], b[i])
		}
	}
}

func TestScaleUnknownProfileFails(t *testing.T) {
	if _, err := Build(Options{Scale: "galaxy"}); err == nil ||
		!strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("Build(Scale: galaxy) = %v, want unknown-scale error", err)
	}
}

// TestScaleCityPopulation pins the city profile's derived population
// and confirms construction is lazy: the synthetic addresses appear in
// scan sweeps, but no synthetic host is registered before first dial.
func TestScaleCityPopulation(t *testing.T) {
	base := buildScaleWorld(t, Options{})
	city := buildScaleWorld(t, Options{Scale: ScaleCity})

	if got := city.ScaleISPs(); got != 48 {
		t.Fatalf("city ScaleISPs = %d, want 48", got)
	}
	if got := city.ScaleHosts(); got != cityHostsSeed0 {
		t.Fatalf("city ScaleHosts = %d, want %d (derivation hash moved?)", got, cityHostsSeed0)
	}
	if got, want := len(city.Net.Addrs()), len(base.Net.Addrs())+cityHostsSeed0; got != want {
		t.Fatalf("city Addrs = %d entries, want %d (handcrafted + synthetic)", got, want)
	}
	// Lazy: enumerating addresses must not register hosts.
	for _, addr := range city.scale.Addrs()[:8] {
		if _, ok := city.Net.Host(addr); ok {
			t.Fatalf("synthetic host %s registered before first dial", addr)
		}
	}
}

// TestScaleNationPopulation pins the acceptance-scale population:
// >= 100k hosts across 2200 ISPs, and a construction cheap enough to
// run in every test pass because nothing is materialized.
func TestScaleNationPopulation(t *testing.T) {
	w := buildScaleWorld(t, Options{Scale: ScaleNation})
	if got := w.ScaleISPs(); got != 2200 {
		t.Fatalf("nation ScaleISPs = %d, want 2200", got)
	}
	if got := w.ScaleHosts(); got != nationHostsSeed0 {
		t.Fatalf("nation ScaleHosts = %d, want %d (derivation hash moved?)", got, nationHostsSeed0)
	}
	if w.ScaleHosts() < 100_000 {
		t.Fatalf("nation ScaleHosts = %d, want >= 100000", w.ScaleHosts())
	}
}

// TestScaleAnswersBeforeMaterialization is the lazy-world contract for
// the non-dial surfaces: DNS, reverse DNS, geolocation and whois answer
// identically for a synthetic host whether or not its ISP has been
// materialized.
func TestScaleAnswersBeforeMaterialization(t *testing.T) {
	w := buildScaleWorld(t, Options{Scale: ScaleCity})
	r := w.scale

	// ISP 0 carries every role: gateway, console (0%12==0) and decoy
	// (0%8==0).
	gw := r.hostAddr(0, 0)
	name := r.hostName(0, 0)
	if name == "" || !strings.HasPrefix(name, "gw.synth0000.example.") {
		t.Fatalf("gateway name = %q", name)
	}

	// Cold answers, no host registered.
	addr, err := w.Net.Resolve(name)
	if err != nil || addr != gw {
		t.Fatalf("cold Resolve(%s) = %s, %v; want %s", name, addr, err, gw)
	}
	rev, ok := w.Net.ReverseLookup(gw)
	if !ok || rev != name {
		t.Fatalf("cold ReverseLookup(%s) = %q, %v", gw, rev, ok)
	}
	coldCountry, ok := w.GeoDB.Country(gw)
	if !ok || coldCountry != r.ispCountry(0) {
		t.Fatalf("cold Country(%s) = %q, %v; want %q", gw, coldCountry, ok, r.ispCountry(0))
	}
	coldAS, ok := w.ASTable.Lookup(gw)
	if !ok || coldAS.ASN != r.ispASN(0) || coldAS.Country != r.ispCountry(0) {
		t.Fatalf("cold whois(%s) = %+v, %v", gw, coldAS, ok)
	}
	if _, registered := w.Net.Host(gw); registered {
		t.Fatal("lookups materialized the host")
	}

	// Materialize ISP 0 through the dial path (the gateway is dark, so
	// the dial itself fails — materialization must still happen first).
	src := w.Net.Hosts()[0]
	if c, err := src.Dial(context.Background(), gw, 80); err == nil {
		c.Close()
		t.Fatal("dial to the dark gateway succeeded")
	}
	host, registered := w.Net.Host(gw)
	if !registered {
		t.Fatal("dial did not materialize the gateway's ISP")
	}
	if host.Name() != name {
		t.Fatalf("materialized name = %q, want %q", host.Name(), name)
	}
	if got := host.ISP().AS.Number; got != coldAS.ASN {
		t.Fatalf("materialized ASN = %d, whois said %d", got, coldAS.ASN)
	}

	// Warm answers must be byte-identical to the cold ones.
	warmCountry, ok := w.GeoDB.Country(gw)
	if !ok || warmCountry != coldCountry {
		t.Fatalf("warm Country = %q, cold was %q", warmCountry, coldCountry)
	}
	warmAS, ok := w.ASTable.Lookup(gw)
	if !ok || warmAS != coldAS {
		t.Fatalf("warm whois = %+v, cold was %+v", warmAS, coldAS)
	}
	if rev, ok := w.Net.ReverseLookup(gw); !ok || rev != name {
		t.Fatalf("warm ReverseLookup = %q, %v", rev, ok)
	}
}

// TestScaleDerivationStability: the synthetic population is a pure
// function of the world seed — same seed, same world; different seed,
// different world.
func TestScaleDerivationStability(t *testing.T) {
	a := buildScaleWorld(t, Options{Scale: ScaleCity})
	b := buildScaleWorld(t, Options{Scale: ScaleCity})
	aAddrs, bAddrs := a.scale.Addrs(), b.scale.Addrs()
	if len(aAddrs) != len(bAddrs) {
		t.Fatalf("same seed, different populations: %d vs %d", len(aAddrs), len(bAddrs))
	}
	for i := range aAddrs {
		if aAddrs[i] != bAddrs[i] {
			t.Fatalf("same seed, Addrs[%d] = %s vs %s", i, aAddrs[i], bAddrs[i])
		}
	}
	for i := 0; i < a.scale.profile.isps; i++ {
		if a.scale.ispName(i) != b.scale.ispName(i) {
			t.Fatalf("same seed, ISP %d named %q vs %q", i, a.scale.ispName(i), b.scale.ispName(i))
		}
	}

	c := buildScaleWorld(t, Options{Scale: ScaleCity, Seed: 7})
	same := len(c.scale.Addrs()) == len(aAddrs)
	if same {
		for i := 0; i < a.scale.profile.isps; i++ {
			if a.scale.ispCountry(i) != c.scale.ispCountry(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 7 derived the identical synthetic population")
	}
}
