// Package world assembles the simulated Internet the experiments run on:
// the paper's countries, ISPs and AS numbers, the four vendors' master
// databases and cloud services, the filtering deployments with their
// policies, sync schedules and license models, researcher infrastructure
// (lab server, scan vantage, test-site hosting), and the background
// installations behind Figure 1.
//
// Everything is parameterized by a manual clock and explicit seeds, so
// each build of the world replays the paper's timeline identically.
package world

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"time"

	"filtermap/internal/categorydb"
	"filtermap/internal/engine"
	"filtermap/internal/fingerprint"
	"filtermap/internal/geo"
	"filtermap/internal/httpwire"
	"filtermap/internal/measurement"
	"filtermap/internal/netsim"
	"filtermap/internal/scanner"
	"filtermap/internal/simclock"
	"filtermap/internal/urllist"
)

// ISP names used throughout (Table 3).
const (
	ISPEtisalat = "Etisalat"
	ISPDu       = "Du"
	ISPOoredoo  = "Ooredoo"
	ISPBayanat  = "Bayanat Al-Oula"
	ISPNournet  = "Nournet"
	ISPYemenNet = "YemenNet"
)

// AS numbers from Table 3.
const (
	ASNEtisalat = 5384
	ASNDu       = 15802
	ASNOoredoo  = 42298
	ASNBayanat  = 48237
	ASNNournet  = 29684
	ASNYemenNet = 12486
)

// Vendor cloud service hostnames.
const (
	HostSiteReview    = "sitereview.bluecoat.example"
	HostTrustedSource = "trustedsource.mcafee.example"
	HostTestASite     = "www.netsweeper.example"
	HostDenyPageTests = "denypagetests.netsweeper.com"
	HostCfAuth        = "www.cfauth.com"
	HostWhois         = "whois.cymru.example"
	HostLab           = "lab.measurement.utoronto.example"
	HostScanVantage   = "scan1.research.example"
)

// Options configures world construction.
type Options struct {
	// Start is the clock start (default simclock.Epoch).
	Start time.Time
	// Seed drives the deterministic domain generator.
	Seed int64

	// HideConsoles installs every product's network faces with ISPOnly
	// visibility — Table 5's first evasion tactic. Identification stops
	// finding anything; confirmation still works.
	HideConsoles bool
	// ScrubHeaders strips brand evidence from product responses — Table
	// 5's second evasion tactic. Signatures stop matching; confirmation
	// still works via unattributed field/lab divergence.
	ScrubHeaders bool
	// FilterSubmissions installs vendor-side submission filters that
	// disregard submissions from the researchers' lab IP or e-mail
	// domain — Table 5's third evasion tactic.
	FilterSubmissions bool
	// DisableDuSyncLag gives Du the same frequent sync schedule as the
	// other deployments, turning Table 3's 5/6 into 6/6 (an ablation).
	DisableDuSyncLag bool

	// ChaosSeed, when nonzero, installs a deterministic fault-injection
	// plan on the simulated network (netsim.FaultPlan): the same seed
	// yields the same failure sequence at any worker count. Chaos mode
	// also installs a default retry policy and circuit breaker on the
	// engine config when the caller set none, so the hardening paths
	// actually run.
	//
	// Both chaos fields are omitempty so chaos-free configurations keep
	// the ConfigHash they had before fault injection existed (snapshot
	// IDs and cache keys are derived from it).
	ChaosSeed uint64 `json:",omitempty"`
	// FaultProfile names the fault plan ChaosSeed parameterizes (see
	// netsim.FaultProfiles; "" means netsim.DefaultFaultProfile).
	FaultProfile string `json:",omitempty"`

	// Mechanisms, when non-nil, adds the multi-mechanism censorship
	// roster: ISPs blocking via DNS poisoning, TCP RST injection and
	// SNI-based TLS filtering (see mechanisms.go). Omitempty for the same
	// reason as the chaos fields: mechanism-free worlds keep the
	// ConfigHash (and thus snapshot IDs and cache keys) they always had.
	Mechanisms *MechanismOptions `json:",omitempty"`

	// Scale selects the synthetic population profile ("", "small",
	// "city", "nation" — see scale.go). The default adds nothing, so
	// every pre-scale golden and ConfigHash is preserved; non-default
	// values participate in the hash, making scale part of snapshot IDs
	// and cache keys.
	Scale string `json:",omitempty"`
	// EagerScale materializes the entire synthetic population at Build
	// time instead of lazily on first dial. Excluded from the JSON form
	// (and therefore from ConfigHash): by the determinism contract an
	// eager world is byte-identical to a lazy one, so both must share
	// cache keys and snapshot IDs.
	EagerScale bool `json:"-"`
}

// World is the assembled simulation.
type World struct {
	Opts  Options
	Clock *simclock.Manual
	Net   *netsim.Network

	// Engine is the shared execution configuration every pooled pipeline
	// stage inherits (workers, timeout, retry, stats, observer). Build
	// always installs a Stats registry so Stats() is never nil.
	Engine engine.Config

	GeoDB   *geo.DB
	ASTable *geo.ASTable
	Dir     *urllist.Directory
	Gen     *urllist.Generator

	// Vendor master databases.
	BlueCoatDB    *categorydb.DB
	SmartFilterDB *categorydb.DB
	NetsweeperDB  *categorydb.DB
	WebsenseDB    *categorydb.DB

	// Vantages.
	Lab         *netsim.Host
	ScanVantage *netsim.Host
	// FieldHosts maps ISP name -> in-country tester host.
	FieldHosts map[string]*netsim.Host
	// ProxyVantage is an out-of-band submission origin (the Tor/proxy
	// countermeasure of §6.2).
	ProxyVantage *netsim.Host

	// FieldResolvers maps ISP name -> in-ISP recursive resolver address
	// (mechanism deployments only; the DNS probes query it directly).
	FieldResolvers map[string]netip.Addr
	// LabResolver is the honest comparison resolver, valid only when
	// mechanisms are enabled.
	LabResolver netip.Addr
	// MechDeployments is the mechanism roster's ground truth, in roster
	// order (empty without Options.Mechanisms).
	MechDeployments []MechDeployment

	// hostAllocator state for researcher test sites.
	nextSiteIP netip.Addr
	hostingISP *netsim.ISP

	// scale is the lazily-materialized synthetic population (nil at the
	// default profile).
	scale *scaleRealm

	// Deployment handles for tests and ablations.
	YemenLicense *licenseHandle
}

// licenseHandle exposes the YemenNet license model for ablations.
type licenseHandle struct {
	MaxConcurrent int
	Load          func(time.Time) int
}

// Build constructs the default world. Engine options (engine.WithWorkers,
// engine.WithObserver, engine.WithRetryPolicy, ...) tune the shared
// execution substrate; omitting them keeps the defaults.
func Build(opts Options, engOpts ...engine.Option) (*World, error) {
	clock := simclock.NewManual(opts.Start)
	engCfg := engine.NewConfig(engOpts...)
	if engCfg.Stats == nil {
		engCfg.Stats = engine.NewStats()
	}
	if opts.ChaosSeed != 0 {
		// Chaos without retries or a breaker would just shrink coverage;
		// give the hardening machinery its defaults unless the caller
		// configured its own.
		if engCfg.Retry.MaxAttempts == 0 {
			engCfg.Retry = engine.DefaultRetryPolicy()
		}
		if engCfg.Breaker == nil {
			// The limit matches the retry budget so the breaker never cuts
			// an item's own retry loop short (a fault recovering on the
			// last attempt must get that attempt); it only suppresses
			// re-testing targets that already burned a full loop.
			engCfg.Breaker = engine.NewBreaker(engCfg.Retry.MaxAttempts)
		}
	}
	if engCfg.Sleep == nil {
		// Retry backoffs wait on the virtual clock, not the wall clock.
		engCfg.Sleep = func(_ context.Context, d time.Duration) { clock.Advance(d) }
	}
	w := &World{
		Opts:       opts,
		Clock:      clock,
		Net:        netsim.New(clock),
		Engine:     engCfg,
		GeoDB:      &geo.DB{},
		ASTable:    &geo.ASTable{},
		Dir:        urllist.NewDirectory(),
		Gen:        urllist.NewGenerator(opts.Seed + 1),
		FieldHosts:     make(map[string]*netsim.Host),
		FieldResolvers: make(map[string]netip.Addr),
	}

	w.BlueCoatDB = newBlueCoatDB(clock)
	w.SmartFilterDB = newSmartFilterDB(clock)
	w.NetsweeperDB = newNetsweeperDB(clock, w.Dir)
	w.WebsenseDB = newWebsenseDB(clock)

	if err := w.buildInfrastructure(); err != nil {
		return nil, fmt.Errorf("world: infrastructure: %w", err)
	}
	if err := w.buildListSites(); err != nil {
		return nil, fmt.Errorf("world: list sites: %w", err)
	}
	if err := w.buildLinkedWeb(); err != nil {
		return nil, fmt.Errorf("world: linked web: %w", err)
	}
	if err := w.buildDeployments(); err != nil {
		return nil, fmt.Errorf("world: deployments: %w", err)
	}
	if err := w.buildBackgroundInstallations(); err != nil {
		return nil, fmt.Errorf("world: background installations: %w", err)
	}
	if err := w.buildScale(); err != nil {
		return nil, err
	}
	if opts.Mechanisms != nil {
		if err := w.buildMechanisms(); err != nil {
			return nil, fmt.Errorf("world: mechanisms: %w", err)
		}
	}
	if opts.FilterSubmissions {
		w.installSubmissionFilters()
	}
	if opts.ChaosSeed != 0 {
		// Installed last so world construction itself (which performs no
		// dials) is never perturbed — only measurement traffic is.
		plan, err := netsim.NewFaultProfile(opts.FaultProfile, opts.ChaosSeed)
		if err != nil {
			return nil, fmt.Errorf("world: %w", err)
		}
		w.Net.SetFaultPlan(plan)
	}
	return w, nil
}

// MustBuild builds the default world or panics (for benchmarks).
func MustBuild(opts Options) *World {
	w, err := Build(opts)
	if err != nil {
		panic(err)
	}
	return w
}

// Close shuts the simulated network down.
func (w *World) Close() { w.Net.Close() }

// Stats returns the engine metrics registry shared by every pooled stage
// this world runs (scan, search, validate, whois, geo, measure,
// characterize, campaign). Never nil.
func (w *World) Stats() *engine.Stats { return w.Engine.Stats }

// Wait advances the virtual clock.
func (w *World) Wait(d time.Duration) { w.Clock.Advance(d) }

// visibility returns the product-console visibility per the evasion
// options.
func (w *World) visibility() netsim.Visibility {
	if w.Opts.HideConsoles {
		return netsim.ISPOnly
	}
	return netsim.Public
}

// addAS registers an AS with the network, geolocation DB and whois table.
func (w *World) addAS(number int, name, country, cidr string) (*netsim.AS, error) {
	prefix, err := netip.ParsePrefix(cidr)
	if err != nil {
		return nil, err
	}
	as, err := w.Net.AddAS(number, name, country, prefix)
	if err != nil {
		return nil, err
	}
	w.GeoDB.Add(prefix, country)
	w.ASTable.Add(geo.ASRecord{ASN: number, Name: name, Country: country, Prefix: prefix})
	return as, nil
}

// FieldVantage returns the in-country measurement vantage for an ISP.
func (w *World) FieldVantage(isp string) (*measurement.Vantage, error) {
	h, ok := w.FieldHosts[isp]
	if !ok {
		return nil, fmt.Errorf("world: no field host in ISP %q", isp)
	}
	v := &measurement.Vantage{Name: "field:" + isp, Host: h}
	if r, ok := w.FieldResolvers[isp]; ok {
		v.Resolver = r
	}
	return v, nil
}

// LabVantage returns the Toronto lab vantage.
func (w *World) LabVantage() *measurement.Vantage {
	return &measurement.Vantage{Name: "lab:toronto", Host: w.Lab, Resolver: w.LabResolver}
}

// MeasureClient returns the dual-vantage client for an ISP.
func (w *World) MeasureClient(isp string) (*measurement.Client, error) {
	field, err := w.FieldVantage(isp)
	if err != nil {
		return nil, err
	}
	return &measurement.Client{Field: field, Lab: w.LabVantage(), Config: w.Engine}, nil
}

// LabClient returns an HTTP client dialing from the lab (the researchers'
// own IP — the one a vendor submission filter would key on).
func (w *World) LabClient() *httpwire.Client {
	return &httpwire.Client{Dial: w.Lab.Dialer(), Timeout: 10 * time.Second}
}

// ProxyClient returns an HTTP client dialing from the proxy vantage (the
// §6.2 countermeasure to submitter-IP filtering).
func (w *World) ProxyClient() *httpwire.Client {
	return &httpwire.Client{Dial: w.ProxyVantage.Dialer(), Timeout: 10 * time.Second}
}

// Scanner returns a banner scanner at the research vantage.
func (w *World) Scanner() *scanner.Scanner {
	return &scanner.Scanner{Vantage: w.ScanVantage, Config: w.Engine}
}

// Fingerprinter returns a fingerprint engine at the research vantage.
func (w *World) Fingerprinter() *fingerprint.Engine {
	return &fingerprint.Engine{Vantage: w.ScanVantage}
}

// WhoisClient returns a bulk whois client against the simulated Team
// Cymru service.
func (w *World) WhoisClient() *geo.WhoisClient {
	return &geo.WhoisClient{Dial: func(ctx context.Context) (net.Conn, error) {
		return w.ScanVantage.DialHost(ctx, HostWhois, geo.WhoisPort)
	}}
}
