package world

import (
	"context"
	"fmt"
	"testing"
	"time"

	"filtermap/internal/confirm"
	"filtermap/internal/measurement"
	"filtermap/internal/products/netsweeper"
	"filtermap/internal/simclock"
	"filtermap/internal/urllist"
)

func buildTestWorld(t *testing.T, opts Options) *World {
	t.Helper()
	w, err := Build(opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestWorldBuilds(t *testing.T) {
	w := buildTestWorld(t, Options{})
	if len(w.Net.Hosts()) < 100 {
		t.Fatalf("world has only %d hosts; expected a populated Internet", len(w.Net.Hosts()))
	}
	for _, isp := range []string{ISPEtisalat, ISPDu, ISPOoredoo, ISPBayanat, ISPNournet, ISPYemenNet} {
		if _, ok := w.FieldHosts[isp]; !ok {
			t.Errorf("no field host in %s", isp)
		}
	}
}

// TestChallenge1CategoryNotEnabled reproduces §4.3: SmartFilter-classified
// proxy sites load fine in Saudi Arabia (the proxy category is not
// enabled) while SmartFilter-classified pornography is blocked; in UAE
// both are blocked.
func TestChallenge1CategoryNotEnabled(t *testing.T) {
	w := buildTestWorld(t, Options{})
	ctx := context.Background()

	saudi, err := w.MeasureClient(ISPBayanat)
	if err != nil {
		t.Fatal(err)
	}
	res := saudi.TestURL(ctx, "http://securelyproxy.net/")
	if res.Verdict != measurement.Accessible {
		t.Fatalf("Saudi proxy-category site verdict = %v, want accessible (category not enabled)", res.Verdict)
	}
	res = saudi.TestURL(ctx, "http://global-pornography.org/")
	if res.Verdict != measurement.Blocked {
		t.Fatalf("Saudi pornography verdict = %v, want blocked", res.Verdict)
	}
	if res.BlockMatch.Product != "McAfee SmartFilter" {
		t.Fatalf("Saudi block attributed to %q, want McAfee SmartFilter", res.BlockMatch.Product)
	}

	uae, err := w.MeasureClient(ISPEtisalat)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"http://securelyproxy.net/", "http://global-pornography.org/"} {
		res := uae.TestURL(ctx, u)
		if res.Verdict != measurement.Blocked {
			t.Fatalf("Etisalat verdict for %s = %v, want blocked", u, res.Verdict)
		}
		if res.BlockMatch.Product != "McAfee SmartFilter" {
			t.Fatalf("Etisalat block attributed to %q, want McAfee SmartFilter (challenge 3: SmartFilter atop Blue Coat)", res.BlockMatch.Product)
		}
	}
}

// TestTable3 reproduces every row of Table 3 exactly.
func TestTable3(t *testing.T) {
	w := buildTestWorld(t, Options{})
	outcomes, err := w.RunTable3(context.Background())
	if err != nil {
		t.Fatalf("RunTable3: %v", err)
	}
	if len(outcomes) != 10 {
		t.Fatalf("got %d outcomes, want 10", len(outcomes))
	}
	type row struct {
		product, country, isp string
		asn                   int
		submitted, blocked    string
		confirmed             bool
	}
	want := []row{
		{"Blue Coat", "AE", ISPEtisalat, 5384, "3/6", "0/3", false},
		{"Blue Coat", "QA", ISPOoredoo, 42298, "3/6", "0/3", false},
		{"McAfee SmartFilter", "QA", ISPOoredoo, 42298, "5/10", "0/5", false},
		{"McAfee SmartFilter", "SA", ISPBayanat, 48237, "5/10", "5/5", true},
		{"McAfee SmartFilter", "SA", ISPNournet, 29684, "5/10", "5/5", true},
		{"McAfee SmartFilter", "AE", ISPEtisalat, 5384, "5/10", "5/5", true},
		{"McAfee SmartFilter", "AE", ISPEtisalat, 5384, "5/10", "5/5", true},
		{"Netsweeper", "QA", ISPOoredoo, 42298, "6/12", "6/6", true},
		{"Netsweeper", "AE", ISPDu, 15802, "6/12", "5/6", true},
		{"Netsweeper", "YE", ISPYemenNet, 12486, "6/12", "6/6", true},
	}
	for i, wr := range want {
		o := outcomes[i]
		c := o.Campaign
		if c.Product != wr.product || c.Country != wr.country || c.ISP != wr.isp || c.ASN != wr.asn {
			t.Errorf("row %d identity = %s/%s/%s/AS%d, want %s/%s/%s/AS%d",
				i+1, c.Product, c.Country, c.ISP, c.ASN, wr.product, wr.country, wr.isp, wr.asn)
		}
		if got := o.SubmittedRatio(); got != wr.submitted {
			t.Errorf("row %d (%s %s) submitted = %s, want %s", i+1, c.Product, c.ISP, got, wr.submitted)
		}
		if got := o.Ratio(); got != wr.blocked {
			t.Errorf("row %d (%s %s) blocked = %s, want %s", i+1, c.Product, c.ISP, got, wr.blocked)
		}
		if o.Confirmed != wr.confirmed {
			t.Errorf("row %d (%s %s) confirmed = %v, want %v", i+1, c.Product, c.ISP, o.Confirmed, wr.confirmed)
		}
		if o.BlockedControls != 0 {
			t.Errorf("row %d (%s %s) blocked controls = %d, want 0", i+1, c.Product, c.ISP, o.BlockedControls)
		}
		if c.PreTest && !o.PreTestClean {
			t.Errorf("row %d (%s %s) pre-test was not clean", i+1, c.Product, c.ISP)
		}
	}
}

// TestDuSyncLagAblation shows the mechanism behind Du's 5/6: with the
// weekly sync lag disabled, the same campaign blocks 6/6.
func TestDuSyncLagAblation(t *testing.T) {
	w := buildTestWorld(t, Options{DisableDuSyncLag: true})
	var duPlan *Plan
	for _, p := range w.Table3Plans() {
		if p.Key == "netsweeper-uae-du" {
			pp := p
			duPlan = &pp
			break
		}
	}
	if duPlan == nil {
		t.Fatal("no Du plan")
	}
	w.Clock.AdvanceTo(duPlan.StartAt)
	campaign, err := duPlan.Build()
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := confirm.Run(context.Background(), campaign)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Ratio() != "6/6" {
		t.Fatalf("without sync lag Du blocked %s, want 6/6", outcome.Ratio())
	}
}

// TestDenyPageTests reproduces §4.4's 66-category probe in YemenNet:
// exactly five categories blocked — adult images, phishing, pornography,
// proxy anonymizers, search keywords.
func TestDenyPageTests(t *testing.T) {
	w := buildTestWorld(t, Options{})
	// Probe at an hour when the license permits filtering.
	w.Clock.AdvanceTo(simclock.Epoch.Add(8 * time.Hour))
	if !w.YemenFilteringActive(w.Clock.Now()) {
		t.Fatal("expected filtering active at 08:00")
	}
	client, err := w.MeasureClient(ISPYemenNet)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var blocked []int
	for n := 1; n <= 66; n++ {
		url := fmt.Sprintf("http://%s/category/catno/%d", HostDenyPageTests, n)
		res := client.TestURL(ctx, url)
		if res.Verdict == measurement.Blocked {
			blocked = append(blocked, n)
		}
	}
	want := []int{
		netsweeper.CatNoAdultImage,
		netsweeper.CatNoPhishing,
		netsweeper.CatNoPornography,
		netsweeper.CatNoProxyAnonymizer,
		netsweeper.CatNoSearchKeywords,
	}
	if len(blocked) != len(want) {
		t.Fatalf("blocked categories = %v, want %v", blocked, want)
	}
	for i := range want {
		if blocked[i] != want[i] {
			t.Fatalf("blocked categories = %v, want %v", blocked, want)
		}
	}
}

// TestYemenInconsistentBlocking reproduces challenge 2: at peak demand
// the license is exhausted and filtering fails open.
func TestYemenInconsistentBlocking(t *testing.T) {
	w := buildTestWorld(t, Options{})
	client, err := w.MeasureClient(ISPYemenNet)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const url = "http://global-pornography.org/"

	// 08:00: demand under license, blocking enforced.
	w.Clock.AdvanceTo(simclock.Epoch.Add(8 * time.Hour))
	if res := client.TestURL(ctx, url); res.Verdict != measurement.Blocked {
		t.Fatalf("off-peak verdict = %v, want blocked", res.Verdict)
	}
	// 14:00: peak demand exceeds the license, filter fails open.
	w.Clock.Advance(6 * time.Hour)
	if w.YemenFilteringActive(w.Clock.Now()) {
		t.Fatal("expected license exhausted at peak")
	}
	if res := client.TestURL(ctx, url); res.Verdict != measurement.Accessible {
		t.Fatalf("peak verdict = %v, want accessible (fail-open)", res.Verdict)
	}
	// 20:00: enforcement resumes.
	w.Clock.Advance(6 * time.Hour)
	if res := client.TestURL(ctx, url); res.Verdict != measurement.Blocked {
		t.Fatalf("evening verdict = %v, want blocked again", res.Verdict)
	}
}

// TestNetsweeperAutoQueueTaintsPreTest reproduces the §4.4 rationale for
// skipping pre-tests: merely accessing an uncategorized proxy site
// through a queueing deployment gets it categorized and, days later,
// blocked — without any submission.
func TestNetsweeperAutoQueueTaintsPreTest(t *testing.T) {
	w := buildTestWorld(t, Options{})
	w.Clock.AdvanceTo(simclock.Epoch.Add(8 * time.Hour))
	urls, err := w.ProvisionTestSites(urllist.GlypeProxy, 2)
	if err != nil {
		t.Fatal(err)
	}
	client, err := w.MeasureClient(ISPYemenNet)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Pre-test: accessible, but the access itself queues the domains.
	for _, u := range urls {
		if res := client.TestURL(ctx, u); res.Verdict != measurement.Accessible {
			t.Fatalf("fresh site %s verdict = %v, want accessible", u, res.Verdict)
		}
	}
	// Days later the queue has categorized them; no submission happened.
	w.Wait(simclock.Days(4))
	for _, u := range urls {
		if res := client.TestURL(ctx, u); res.Verdict != measurement.Blocked {
			t.Fatalf("pre-tested site %s verdict = %v, want blocked by auto-categorization", u, res.Verdict)
		}
	}
}
