package filtermap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"filtermap"

	"filtermap/internal/longitudinal"
)

// End-to-end longitudinal run: identify the same simulated Internet at
// two virtual times with known churn injected in between, persist both
// reports through the snapshot store, and check that the diff — via the
// library, the fmhist text renderer (golden file), and fmserve's GET
// /v1/diff — reports exactly the injected changes.
//
// The injected churn:
//
//   - added:    a new Netsweeper installation at 93.190.1.1 (KZ, AS64600)
//   - removed:  the Telefonica Chile Blue Coat box at 190.96.1.1 (CL)
//   - migrated: True Internet's 27.130.1.1 re-announced from AS38082
//
// Regenerate the golden after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenHistDiff -count=1 .
func TestGoldenHistDiff(t *testing.T) {
	dir := t.TempDir()
	w, err := filtermap.NewWorld(filtermap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx := context.Background()
	cfg := filtermap.ConfigHash(filtermap.Options{})

	snapshotNow := func(note string) filtermap.Snapshot {
		t.Helper()
		rep, err := w.RunIdentification(ctx)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(filtermap.Reporter{}.IdentifyJSON(rep))
		if err != nil {
			t.Fatal(err)
		}
		return filtermap.Snapshot{
			Kind:   longitudinal.KindIdentify,
			At:     w.Clock.Now(),
			Config: cfg,
			Note:   note,
			Body:   body,
		}
	}

	snapA := snapshotNow("baseline")

	// Inject the churn, then re-scan a virtual week later.
	if err := w.AddBackgroundInstall("netsweeper", 64600, "NEWISP-EXAMPLE", "KZ",
		"93.190.0.0/16", "93.190.1.1", "ns.newisp.example.kz"); err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveInstallation("190.96.1.1"); err != nil {
		t.Fatal(err)
	}
	if err := w.MigrateInstallation("27.130.1.1", 38082, "TRUE-MOBILE Thailand", ""); err != nil {
		t.Fatal(err)
	}
	w.Clock.Advance(7 * 24 * time.Hour)
	snapB := snapshotNow("after churn")

	// Persist both through the store, exactly as fmhist record does.
	s, err := filtermap.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range []filtermap.Snapshot{snapA, snapB} {
		if _, err := s.Append(snap); err != nil {
			s.Close()
			t.Fatal(err)
		}
	}

	// Diff through the library, exactly as fmhist diff does.
	fromMeta, fromBody, err := s.Get("1")
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	toMeta, toBody, err := s.Get("2")
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	s.Close()
	d, err := filtermap.NewDiffEngine().Diff(ctx,
		longitudinal.Input{Meta: fromMeta, Body: fromBody},
		longitudinal.Input{Meta: toMeta, Body: toBody},
	)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly the injected churn, nothing else.
	inst := d.Installs
	if inst == nil {
		t.Fatal("diff has no installation section")
	}
	if len(inst.Added) != 1 || inst.Added[0].IP != "93.190.1.1" {
		t.Errorf("Added = %+v, want exactly 93.190.1.1", inst.Added)
	}
	if len(inst.Added) == 1 && inst.Added[0].Country != "KZ" {
		t.Errorf("added country = %q, want KZ", inst.Added[0].Country)
	}
	if len(inst.Removed) != 1 || inst.Removed[0].IP != "190.96.1.1" {
		t.Errorf("Removed = %+v, want exactly 190.96.1.1", inst.Removed)
	}
	if len(inst.Changed) != 1 {
		t.Fatalf("Changed = %+v, want exactly one entry", inst.Changed)
	}
	ch := inst.Changed[0]
	if ch.IP != "27.130.1.1" || !ch.Migrated || ch.FromASN != 7470 || ch.ToASN != 38082 {
		t.Errorf("Changed = %+v, want 27.130.1.1 migrated AS7470 -> AS38082", ch)
	}
	if ch.FromCountry != ch.ToCountry {
		t.Errorf("migration moved country %q -> %q, want it kept", ch.FromCountry, ch.ToCountry)
	}

	// The fmhist diff rendering is pinned as a golden file. Snapshot IDs
	// and virtual times are deterministic, so the whole header is too.
	text := filtermap.Reporter{}.DiffText(d)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile("testdata/fmhist_diff.golden", []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, "fmhist_diff.golden", text)

	// fmserve over the same store dir must report the identical diff.
	srv, err := filtermap.NewServer(filtermap.ServeOptions{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(ctx)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(fmt.Sprintf("%s/v1/diff?from=%s&to=%s", ts.URL, fromMeta.ID, toMeta.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/diff = %d: %s", resp.StatusCode, body)
	}
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	local, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var servedC, localC bytes.Buffer
	if err := json.Compact(&servedC, served); err != nil {
		t.Fatalf("server diff is not valid JSON: %v", err)
	}
	if err := json.Compact(&localC, local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(servedC.Bytes(), localC.Bytes()) {
		t.Errorf("GET /v1/diff disagrees with local diff:\nserver: %s\nlocal:  %s", servedC.Bytes(), localC.Bytes())
	}
}
