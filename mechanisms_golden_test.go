package filtermap_test

import (
	"context"
	"strings"
	"testing"

	"filtermap"

	"filtermap/internal/fingerprint"
	"filtermap/internal/report"
)

// mechanismsRun reproduces fmrepro's `-only mechanisms` step in its
// exact output layout — the extended Table 2, the per-ISP mechanism
// survey, and the Table 4 mechanism matrix — with the worker pool
// sized as given.
func mechanismsRun(t *testing.T, workers int) string {
	t.Helper()
	w, err := filtermap.NewWorld(
		filtermap.Options{Mechanisms: &filtermap.MechanismOptions{}},
		filtermap.WithWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	targets, err := w.RunMechanismSurvey(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var r filtermap.Reporter
	sigDescs := make(map[string][]string)
	for _, sig := range fingerprint.Table2Signatures() {
		var parts []string
		for _, m := range sig.Matchers {
			parts = append(parts, m.Describe())
		}
		sigDescs[sig.Product] = append(sigDescs[sig.Product], strings.Join(parts, " AND "))
	}
	out := report.Table2WithMechanisms(fingerprint.ShodanKeywords(), sigDescs,
		fingerprint.MechanismSignatureDescriptions())
	out += "\n" + r.Mechanisms(targets) + "\n" + r.Table4Mechanisms(targets)
	return out
}

// TestGoldenMechanisms pins the multi-mechanism survey: the seeded
// world's DNS/RST/SNI deployments must attribute a product AND a
// mechanism to every censoring ISP, byte-identically at any worker
// count — and identically to testdata/mechanisms.golden. Regenerate
// after an intentional change with `make mech-golden` (see Makefile).
func TestGoldenMechanisms(t *testing.T) {
	got1 := mechanismsRun(t, 1)
	got8 := mechanismsRun(t, 8)
	if got1 != got8 {
		l1, l8 := splitLines(got1), splitLines(got8)
		for i := 0; i < len(l1) || i < len(l8); i++ {
			var a, b string
			if i < len(l1) {
				a = l1[i]
			}
			if i < len(l8) {
				b = l8[i]
			}
			if a != b {
				t.Errorf("workers=1 vs workers=8 line %d:\n  w1: %q\n  w8: %q", i+1, a, b)
			}
		}
		t.Fatal("mechanism survey is not deterministic across worker counts")
	}
	compareGolden(t, "mechanisms.golden", got1)
}

// TestGoldenMechanismsCoverage asserts the golden is not vacuous: each
// of the three mechanism kinds must be deployed by at least three ISPs,
// and at least one ISP must mix kinds.
func TestGoldenMechanismsCoverage(t *testing.T) {
	w, err := filtermap.NewWorld(filtermap.Options{Mechanisms: &filtermap.MechanismOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	targets, err := w.RunMechanismSurvey(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]map[string]bool{}
	mixed := 0
	for _, tgt := range targets {
		kinds := map[string]bool{}
		for _, res := range tgt.Results {
			if res.Mechanism == "" {
				continue
			}
			if res.MechProduct == "" {
				t.Errorf("%s: mechanism %s detected without product attribution", tgt.ISP, res.Mechanism)
			}
			// A detected probe is a deployment even when another mechanism
			// fronts the verdict: mixed deployments count for both kinds.
			for _, p := range res.Probes {
				if !p.Detected {
					continue
				}
				k := string(p.Kind)
				kinds[k] = true
				if byKind[k] == nil {
					byKind[k] = map[string]bool{}
				}
				byKind[k][tgt.ISP] = true
			}
		}
		if len(kinds) > 1 {
			mixed++
		}
	}
	for _, k := range []string{"dns", "rst", "sni"} {
		if len(byKind[k]) < 3 {
			t.Errorf("mechanism %s deployed by %d ISPs, want >= 3", k, len(byKind[k]))
		}
	}
	if mixed == 0 {
		t.Error("no ISP mixes mechanism kinds; the roster should include mixed deployments")
	}
}
