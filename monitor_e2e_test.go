package filtermap_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"filtermap"
)

// End-to-end coverage for the continuous-measurement subsystem: the
// scheduler's event stream is pinned as a golden file and byte-compared
// across worker counts (the determinism contract), and fmserve's
// /v1/watch stream is driven over real HTTP, including a mid-stream
// disconnect resumed with Last-Event-ID.
//
// Regenerate the golden after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenMonitor -count=1 .

// monitorRun executes the canonical 4-tick scripted run and returns the
// rendered log plus counter summary.
func monitorRun(t *testing.T, workers int) string {
	t.Helper()
	st, err := filtermap.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var engOpts []filtermap.Option
	if workers > 0 {
		engOpts = append(engOpts, filtermap.WithWorkers(workers))
	}
	mon, err := filtermap.NewMonitor(filtermap.MonitorOptions{
		Seed:   7,
		Engine: engOpts,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	events, err := mon.RunTicks(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return filtermap.RenderMonitorLog(events) + "\n" + filtermap.RenderMonitorSummary(mon.Counters())
}

func TestGoldenMonitor(t *testing.T) {
	got := monitorRun(t, 1)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile("testdata/monitor.golden", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, "monitor.golden", got)

	// The determinism contract: the same seed and tick count produce the
	// identical event stream at any worker count.
	if par := monitorRun(t, 8); par != got {
		t.Fatalf("monitor run diverged at 8 workers:\n-- 1 worker --\n%s\n-- 8 workers --\n%s", got, par)
	}
}

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	id   uint64
	kind string
	data string
}

// readSSE consumes frames from an event stream until n events (or EOF /
// read error, which terminates the stream early).
func readSSE(r io.Reader, n int) ([]sseEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []sseEvent
	var cur sseEvent
	for len(out) < n && sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.data != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id) //nolint:errcheck // malformed id stays 0 and fails the assertions
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil && len(out) < n {
		return out, err
	}
	return out, nil
}

// TestWatchSSEResume drives /v1/watch over real HTTP: subscribe, watch a
// tick stream in, disconnect, miss a tick, and reconnect with
// Last-Event-ID to replay exactly the missed events.
func TestWatchSSEResume(t *testing.T) {
	srv, err := filtermap.NewServer(filtermap.ServeOptions{
		Monitor: &filtermap.MonitorOptions{
			Seed: 7,
			Plans: []filtermap.MonitorPlan{
				{Name: "identify", Kind: "identify", Every: 24 * time.Hour},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	tick := func() {
		resp, err := http.Post(ts.URL+"/v1/monitor/tick", "application/json", strings.NewReader(`{"ticks":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("tick: status %d: %s", resp.StatusCode, b)
		}
	}

	// Tick once before subscribing: the subscription must replay the
	// retained tail (since=0) before going live.
	tick()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	// Tick 1 produced one churn and one snapshot event.
	first, err := readSSE(resp.Body, 2)
	if err != nil {
		t.Fatalf("read first batch: %v", err)
	}
	resp.Body.Close()
	if len(first) != 2 {
		t.Fatalf("got %d events before disconnect, want 2", len(first))
	}
	if first[0].kind != "churn" || first[1].kind != "snapshot" {
		t.Fatalf("event kinds = %q, %q; want churn, snapshot", first[0].kind, first[1].kind)
	}
	last := first[len(first)-1].id

	// Two ticks land while disconnected.
	tick()
	tick()

	// Reconnect with Last-Event-ID: the stream must replay everything
	// after the last event we saw, in order, with contiguous IDs.
	req, _ = http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(last))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	missed, err := readSSE(resp.Body, 4)
	if err != nil {
		t.Fatalf("read replay: %v", err)
	}
	if len(missed) != 4 {
		t.Fatalf("replayed %d events, want 4 (2 ticks x churn+snapshot)", len(missed))
	}
	for i, e := range missed {
		if want := last + uint64(i) + 1; e.id != want {
			t.Fatalf("replay event %d has id %d, want %d", i, e.id, want)
		}
		var body struct {
			Tick int    `json:"tick"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(e.data), &body); err != nil {
			t.Fatalf("replay event %d data is not JSON: %v", i, err)
		}
		if body.Type != e.kind {
			t.Fatalf("replay event %d: frame type %q != body type %q", i, e.kind, body.Type)
		}
	}

	// The long-poll fallback sees the same history.
	pollResp, err := http.Get(ts.URL + "/v1/watch?poll=1&since=" + fmt.Sprint(last))
	if err != nil {
		t.Fatal(err)
	}
	defer pollResp.Body.Close()
	var poll struct {
		LastEventID uint64            `json:"last_event_id"`
		Events      []json.RawMessage `json:"events"`
	}
	if err := json.NewDecoder(pollResp.Body).Decode(&poll); err != nil {
		t.Fatal(err)
	}
	if len(poll.Events) != 4 {
		t.Fatalf("poll returned %d events, want 4", len(poll.Events))
	}
	if poll.LastEventID != last+4 {
		t.Fatalf("poll last_event_id = %d, want %d", poll.LastEventID, last+4)
	}
}

// TestWatchInvalidatesCache proves the delta-aware invalidation
// satellite: a cached report for a (kind, config) pair dies the moment a
// newer snapshot for that pair is appended, instead of riding out the
// TTL.
func TestWatchInvalidatesCache(t *testing.T) {
	srv, err := filtermap.NewServer(filtermap.ServeOptions{
		Monitor: &filtermap.MonitorOptions{
			Seed: 7,
			Plans: []filtermap.MonitorPlan{
				{Name: "identify", Kind: "identify", Every: 24 * time.Hour},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Record a snapshot through the API: this both caches the identify
	// report and appends a snapshot for (identify, base config).
	resp, err := http.Post(ts.URL+"/v1/snapshots", "application/json", strings.NewReader(`{"kind":"identify"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot record: status %d, want 201", resp.StatusCode)
	}

	metrics := func() (entries int, invalidated uint64) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Cache struct {
				Entries     int    `json:"entries"`
				Invalidated uint64 `json:"invalidated"`
			} `json:"cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Cache.Entries, doc.Cache.Invalidated
	}
	entries, invalidated := metrics()
	if entries == 0 {
		t.Fatal("recording a snapshot should have left the result cache populated")
	}

	// A second identical append dedupes — the content is unchanged, the
	// invalidation hook never fires, and the cached report survives.
	resp, err = http.Post(ts.URL+"/v1/snapshots", "application/json", strings.NewReader(`{"kind":"identify"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deduped record: status %d, want 200", resp.StatusCode)
	}
	if _, inv := metrics(); inv != invalidated {
		t.Fatalf("deduped append moved invalidated %d -> %d, want unchanged", invalidated, inv)
	}

	// A monitor tick churns the landscape and appends a changed identify
	// snapshot under the same config hash: the cached API report for that
	// pair must be dropped immediately.
	resp, err = http.Post(ts.URL+"/v1/monitor/tick", "application/json", strings.NewReader(`{"ticks":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monitor tick: status %d, want 200", resp.StatusCode)
	}
	entriesAfter, invalidatedAfter := metrics()
	if invalidatedAfter <= invalidated {
		t.Fatal("superseding monitor snapshot did not invalidate the cached report")
	}
	if entriesAfter >= entries {
		t.Fatalf("cache entries %d -> %d, want a drop from invalidation", entries, entriesAfter)
	}
}
