// The scale equivalence battery (DESIGN.md §16): a lazily-materialized
// world must be byte-identical to an eagerly-built one for every
// rendered artifact, at any worker count — and the default profile must
// leave every committed golden untouched. `make world-golden` pins
// these under -race.
package filtermap_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"filtermap"

	"filtermap/internal/fingerprint"
	"filtermap/internal/report"
)

// scaleWorld builds a world with the given scale options and worker
// count, torn down with the test.
func scaleWorld(t *testing.T, opts filtermap.Options, workers int) *filtermap.World {
	t.Helper()
	w, err := filtermap.NewWorld(opts, filtermap.WithWorkers(workers))
	if err != nil {
		t.Fatalf("NewWorld(%+v): %v", opts, err)
	}
	t.Cleanup(w.Close)
	return w
}

// The artifact renderers, each reproducing one fmrepro step byte for
// byte on a fresh world.

func identifyArtifact(t *testing.T, opts filtermap.Options, workers int) string {
	t.Helper()
	w := scaleWorld(t, opts, workers)
	rep, err := w.RunIdentification(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var r filtermap.Reporter
	return r.Figure1(rep) + "\n" + r.Installations(rep)
}

func table3Artifact(t *testing.T, opts filtermap.Options, workers int) string {
	t.Helper()
	w := scaleWorld(t, opts, workers)
	outcomes, err := w.RunTable3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return filtermap.Reporter{}.Table3(outcomes)
}

func table4Artifact(t *testing.T, opts filtermap.Options, workers int) string {
	t.Helper()
	w := scaleWorld(t, opts, workers)
	w.Clock.Advance(8 * time.Hour)
	reports, err := w.RunCharacterization(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return filtermap.Reporter{}.Table4(reports) + "\n(cells reconstructed from §5 prose; see EXPERIMENTS.md)"
}

func discoveryArtifact(t *testing.T, opts filtermap.Options, workers int) string {
	t.Helper()
	w := scaleWorld(t, opts, workers)
	w.Clock.Advance(8 * time.Hour)
	targets, err := w.RunDiscovery(context.Background(), filtermap.DiscoveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return filtermap.Reporter{}.Discovery(0, 0, targets)
}

func mechanismsArtifact(t *testing.T, opts filtermap.Options, workers int) string {
	t.Helper()
	opts.Mechanisms = &filtermap.MechanismOptions{}
	w := scaleWorld(t, opts, workers)
	targets, err := w.RunMechanismSurvey(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var r filtermap.Reporter
	return r.Mechanisms(targets) + "\n" + r.Table4Mechanisms(targets)
}

// scaleArtifacts names every world-backed artifact in the battery.
var scaleArtifacts = []struct {
	name   string
	render func(*testing.T, filtermap.Options, int) string
}{
	{"identify", identifyArtifact},
	{"table3", table3Artifact},
	{"table4", table4Artifact},
	{"discovery", discoveryArtifact},
	{"mechanisms", mechanismsArtifact},
}

// diffArtifacts fails with the first differing line when two renderings
// of the same artifact diverge.
func diffArtifacts(t *testing.T, label, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) || i < len(lb); i++ {
		var x, y string
		if i < len(la) {
			x = la[i]
		}
		if i < len(lb) {
			y = lb[i]
		}
		if x != y {
			t.Fatalf("%s line %d:\n  a: %q\n  b: %q", label, i+1, x, y)
		}
	}
	t.Fatalf("%s diverged (lengths %d vs %d)", label, len(a), len(b))
}

// TestScaleSmallProfileMatchesGoldens pins the compatibility half of
// the lazy-world contract: Options.Scale "small" (the explicit default)
// reproduces every committed golden byte for byte, at 1 and 8 workers.
// Table 1 and 2 ride along even though no world backs them, completing
// the Table 1/2/3/4 battery.
func TestScaleSmallProfileMatchesGoldens(t *testing.T) {
	compareGolden(t, "table1.golden", filtermap.Reporter{}.Table1())
	sigDescs := make(map[string][]string)
	for _, sig := range fingerprint.Table2Signatures() {
		var parts []string
		for _, m := range sig.Matchers {
			parts = append(parts, m.Describe())
		}
		sigDescs[sig.Product] = append(sigDescs[sig.Product], strings.Join(parts, " AND "))
	}
	compareGolden(t, "table2.golden", report.Table2(fingerprint.ShodanKeywords(), sigDescs))

	opts := filtermap.Options{Scale: filtermap.ScaleSmall}
	goldens := map[string]string{
		"identify":  "figure1.golden",
		"table3":    "table3.golden",
		"table4":    "table4.golden",
		"discovery": "discovery.golden",
	}
	for _, workers := range []int{1, 8} {
		for _, art := range scaleArtifacts {
			golden, ok := goldens[art.name]
			if !ok {
				continue // mechanisms.golden carries extra Table 2 framing, pinned below
			}
			compareGolden(t, golden, art.render(t, opts, workers))
		}
		got := report.Table2WithMechanisms(fingerprint.ShodanKeywords(), sigDescs,
			fingerprint.MechanismSignatureDescriptions()) + "\n" +
			mechanismsArtifact(t, opts, workers)
		compareGolden(t, "mechanisms.golden", got)
	}
}

// TestScaleCityLazyEagerEquivalence is the determinism tentpole: at the
// city profile every artifact must be byte-identical whether the
// synthetic population is materialized on demand (scan order and worker
// count decide when each ISP appears) or eagerly at build time.
func TestScaleCityLazyEagerEquivalence(t *testing.T) {
	for _, art := range scaleArtifacts {
		t.Run(art.name, func(t *testing.T) {
			var baseline string
			for _, workers := range []int{1, 8} {
				lazy := art.render(t, filtermap.Options{Scale: filtermap.ScaleCity}, workers)
				eager := art.render(t, filtermap.Options{Scale: filtermap.ScaleCity, EagerScale: true}, workers)
				diffArtifacts(t, fmt.Sprintf("%s lazy-vs-eager at %d workers", art.name, workers), lazy, eager)
				if baseline == "" {
					baseline = lazy
				} else {
					diffArtifacts(t, art.name+" across worker counts", baseline, lazy)
				}
			}
		})
	}
}

// TestScaleCityFindsSyntheticInstallations guards that the city battery
// is not vacuous: the synthetic population plants real product consoles
// (every 12th ISP), and identification must find more installations
// than the handcrafted world alone.
func TestScaleCityFindsSyntheticInstallations(t *testing.T) {
	base := scaleWorld(t, filtermap.Options{}, 8)
	baseRep, err := base.RunIdentification(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	city := scaleWorld(t, filtermap.Options{Scale: filtermap.ScaleCity}, 8)
	cityRep, err := city.RunIdentification(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cityRep.Installations) <= len(baseRep.Installations) {
		t.Fatalf("city identify found %d installations, handcrafted world alone found %d — synthetic consoles invisible",
			len(cityRep.Installations), len(baseRep.Installations))
	}
}

// TestScaleConfigHash pins the cache-key plumbing: the scale profile
// must flow into ConfigHash (so fmserve cache entries and snapshot IDs
// never mix worlds of different scales), while EagerScale must NOT —
// lazy and eager builds are byte-equivalent by contract, so they share
// cached results.
func TestScaleConfigHash(t *testing.T) {
	def := filtermap.ConfigHash(filtermap.Options{})
	city := filtermap.ConfigHash(filtermap.Options{Scale: filtermap.ScaleCity})
	nation := filtermap.ConfigHash(filtermap.Options{Scale: filtermap.ScaleNation})
	if def == city || city == nation {
		t.Fatalf("scale missing from config hash: default %s, city %s, nation %s", def, city, nation)
	}
	eager := filtermap.ConfigHash(filtermap.Options{Scale: filtermap.ScaleCity, EagerScale: true})
	if eager != city {
		t.Fatalf("EagerScale changed the config hash (%s vs %s); equivalent worlds must share cache entries", eager, city)
	}
}

// TestScaleNationFullScan is the acceptance run: a nation-scale world
// (>= 100k hosts) completes a full identify scan in one process. It
// costs ~10s, so it only runs when FILTERMAP_SCALE_NATION is set (the
// population-size and memory contracts are covered unconditionally in
// internal/world).
func TestScaleNationFullScan(t *testing.T) {
	if os.Getenv("FILTERMAP_SCALE_NATION") == "" {
		t.Skip("set FILTERMAP_SCALE_NATION=1 to run the full nation-scale scan")
	}
	w := scaleWorld(t, filtermap.Options{Scale: filtermap.ScaleNation}, 8)
	if got := w.ScaleHosts(); got < 100_000 {
		t.Fatalf("nation world has %d synthetic hosts, want >= 100000", got)
	}
	start := time.Now()
	rep, err := w.RunIdentification(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nation identify: %d hosts scanned in %v, %d installations",
		w.ScaleHosts(), time.Since(start), len(rep.Installations))
	if len(rep.Installations) == 0 {
		t.Fatal("nation-scale identify found no installations")
	}
}
