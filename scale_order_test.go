// Satellite property test for generation-order independence: dialing a
// seeded random permutation of the synthetic population across
// goroutines must yield exactly the world — hosts, names, whois, open
// ports, engine counters, and the scan report — that strictly
// sequential address-order access yields.
package filtermap_test

import (
	"context"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"testing"

	"filtermap"
)

// syntheticAddrs returns the realm-backed (class E) addresses of a
// world's sweep surface, in address order.
func syntheticAddrs(w *filtermap.World) []netip.Addr {
	var out []netip.Addr
	for _, a := range w.Net.Addrs() {
		if a.Is4() && a.As4()[0] >= 240 {
			out = append(out, a)
		}
	}
	return out
}

// dialAll materializes addrs through the ordinary dial path using the
// given number of goroutines (1 = strictly sequential, in slice order).
func dialAll(t *testing.T, w *filtermap.World, addrs []netip.Addr, goroutines int) {
	t.Helper()
	src := w.Net.Hosts()[0]
	ctx := context.Background()
	dial := func(addr netip.Addr) {
		// Dark hosts refuse the dial after materializing; that is the
		// normal sweep experience, not an error.
		if c, err := src.Dial(ctx, addr, 80); err == nil {
			c.Close()
		}
	}
	if goroutines <= 1 {
		for _, addr := range addrs {
			dial(addr)
		}
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(addrs); i += goroutines {
				dial(addrs[i])
			}
		}(g)
	}
	wg.Wait()
}

// worldFingerprint flattens the observable state of every synthetic
// host into comparable lines: address, reverse name, ISP, ASN, country,
// and open ports.
func worldFingerprint(t *testing.T, w *filtermap.World) []string {
	t.Helper()
	var lines []string
	for _, addr := range syntheticAddrs(w) {
		h, ok := w.Net.Host(addr)
		if !ok {
			t.Fatalf("synthetic host %s not materialized", addr)
		}
		as, ok := w.Net.LookupAS(addr)
		if !ok {
			t.Fatalf("no AS for %s", addr)
		}
		line := addr.String() + " name=" + h.Name() + " isp=" + h.ISP().Name +
			" asn=" + as.Name + " cc=" + as.Country
		ports := h.OpenPorts()
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		for _, p := range ports {
			line += " port=" + netip.AddrPortFrom(addr, p).String()
		}
		lines = append(lines, line)
	}
	return lines
}

func TestScaleOrderIndependence(t *testing.T) {
	build := func() *filtermap.World {
		return scaleWorld(t, filtermap.Options{Scale: filtermap.ScaleCity}, 8)
	}

	// Reference: strict sequential materialization in address order.
	seq := build()
	addrs := syntheticAddrs(seq)
	dialAll(t, seq, addrs, 1)

	// Property run: a seeded random permutation, eight dialers.
	perm := build()
	shuffled := append([]netip.Addr(nil), syntheticAddrs(perm)...)
	rng := rand.New(rand.NewSource(0xfee1))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	dialAll(t, perm, shuffled, 8)

	// World state must be identical host for host.
	seqFP, permFP := worldFingerprint(t, seq), worldFingerprint(t, perm)
	if len(seqFP) != len(permFP) {
		t.Fatalf("materialized %d vs %d synthetic hosts", len(seqFP), len(permFP))
	}
	for i := range seqFP {
		if seqFP[i] != permFP[i] {
			t.Fatalf("host %d diverged:\n  sequential: %s\n  permuted:   %s", i, seqFP[i], permFP[i])
		}
	}

	// The scan report over the two worlds must be byte-identical...
	seqRep, err := seq.RunIdentification(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	permRep, err := perm.RunIdentification(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var r filtermap.Reporter
	diffArtifacts(t, "identify report after permuted materialization",
		r.Figure1(seqRep)+"\n"+r.Installations(seqRep),
		r.Figure1(permRep)+"\n"+r.Installations(permRep))

	// ...and so must World.Stats(): same stages, same attempt/success/
	// failure counters (latency samples are timing, not behavior).
	seqStats, permStats := seq.Stats().Snapshot(), perm.Stats().Snapshot()
	if len(seqStats.Stages) != len(permStats.Stages) {
		t.Fatalf("engine ran %d vs %d stages", len(seqStats.Stages), len(permStats.Stages))
	}
	for i, ss := range seqStats.Stages {
		ps := permStats.Stages[i]
		if ss.Stage != ps.Stage || ss.Attempts != ps.Attempts || ss.Successes != ps.Successes ||
			ss.Retries != ps.Retries || ss.Failures != ps.Failures || ss.Timeouts != ps.Timeouts {
			t.Fatalf("stage %q counters diverged:\n  sequential: %+v\n  permuted:   %+v", ss.Stage, ss, ps)
		}
	}
}
