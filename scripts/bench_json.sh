#!/bin/sh
# bench_json.sh — run the classification-core headline benchmarks and emit
# their ns/op, B/op and allocs/op as JSON on stdout.
#
# Usage:
#   scripts/bench_json.sh [benchtime] [suite]   # default 20x classify
#   scripts/bench_json.sh 100x > BENCH_classify.json
#   scripts/bench_json.sh 100x mechanisms > BENCH_mechanisms.json
#
# The classify suite's three headline benchmarks cover the hot paths
# rewired onto internal/match (see DESIGN.md §12): the redirect-chain
# classifier, the banner-index search, and the fingerprint identify
# sweep. ExtractTitle rides along as the smallest isolated extractor.
#
# The mechanisms suite covers the per-probe mechanism costs (DESIGN.md
# §13): DNS answer parsing, ClientHello classification, quirk signature
# matching, and the netsim-backed RST/DNS probe round trips.
#
# The monitor suite covers the continuous-measurement loop (DESIGN.md
# §14): one full scheduler tick, watch-broker fanout, and the
# connection-reuse win of pooled list measurement over dial-per-request.
#
# The cluster suite covers distributed scan-out (DESIGN.md §15): the
# mechanism survey through a coordinator with 1, 2 and 4 local workers,
# showing the shard fan-out speedup.
#
# The world suite covers lazy world generation (DESIGN.md §16): cold
# whole-ISP materialization through the dial path, live heap per 10k
# materialized hosts, and the full identify scan lazy vs eager at 1 and
# 8 workers.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-20x}"
SUITE="${2:-classify}"

run() { # run <package> <benchmark regex>
	go test -run xxx -bench "$2" -benchtime "$BENCHTIME" -benchmem "$1" 2>&1 |
		awk '/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = "null"; bytes = "null"; allocs = "null"; heap = ""
			# Columns vary (b.SetBytes adds MB/s), so key on unit labels.
			for (i = 3; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i - 1)
				else if ($i == "B/op") bytes = $(i - 1)
				else if ($i == "allocs/op") allocs = $(i - 1)
				else if ($i == "heapB/10khosts") heap = $(i - 1)
			}
			extra = (heap != "") ? sprintf(", \"heap_bytes_per_10k_hosts\": %s", heap) : ""
			printf "  { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s },\n",
				name, ns, bytes, allocs, extra
		}'
}

case "$SUITE" in
classify)
	COMMENT="classification-core hot paths (DESIGN.md §12)"
	out=$(
		run ./internal/blockpage/ '^BenchmarkClassifyChain$'
		run ./internal/scanner/ '^BenchmarkIndexSearch$'
		run ./internal/fingerprint/ '^BenchmarkFingerprintIdentify$'
		run ./internal/fingerprint/ '^BenchmarkExtractTitle$'
	)
	;;
mechanisms)
	COMMENT="per-probe mechanism costs: codecs, signature matching, netsim probe round trips (DESIGN.md §13)"
	out=$(
		run ./internal/mechanism/ '^BenchmarkMechanismProbes$'
		run ./internal/measurement/ '^BenchmarkMechanismProbes$'
	)
	;;
monitor)
	COMMENT="continuous-measurement loop: scheduler tick, watch fanout, pooled vs dial-per-request list measurement (DESIGN.md §14)"
	out=$(
		run ./internal/monitor/ '^BenchmarkMonitorTick$'
		run ./internal/monitor/ '^BenchmarkWatchFanout$'
		run ./internal/measurement/ '^BenchmarkListReuse$'
	)
	;;
cluster)
	COMMENT="distributed scan-out: mechanism survey via coordinator + 1/2/4 single-thread workers; speedup tracks available cores (DESIGN.md §15)"
	out=$(
		run ./internal/cluster/ '^BenchmarkClusterFanout$'
	)
	;;
world)
	COMMENT="lazy world generation: cold-dial ISP materialization, heap per 10k hosts, full city identify scan lazy vs eager (DESIGN.md §16)"
	out=$(
		run ./internal/world/ '^BenchmarkScaleColdDial$'
		run ./internal/world/ '^BenchmarkScaleMemoryPer10kHosts$'
		run ./internal/world/ '^BenchmarkScaleFullScan$'
	)
	;;
*)
	echo "bench_json.sh: unknown suite \"$SUITE\" (classify, mechanisms, monitor, cluster, world)" >&2
	exit 2
	;;
esac
if [ -z "$out" ]; then
	echo "bench_json.sh: no benchmark output captured" >&2
	exit 1
fi

printf '{\n"comment": "%s",\n"benchtime": "%s",\n"benchmarks": [\n%s\n]\n}\n' \
	"$COMMENT" "$BENCHTIME" "$(printf '%s' "$out" | sed '$ s/,$//')"
