#!/bin/sh
# bench_json.sh — run the classification-core headline benchmarks and emit
# their ns/op, B/op and allocs/op as JSON on stdout.
#
# Usage:
#   scripts/bench_json.sh [benchtime]      # default 20x
#   scripts/bench_json.sh 100x > BENCH_classify.json
#
# The three headline benchmarks cover the hot paths rewired onto
# internal/match (see DESIGN.md §12): the redirect-chain classifier, the
# banner-index search, and the fingerprint identify sweep. ExtractTitle
# rides along as the smallest isolated extractor.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-20x}"

run() { # run <package> <benchmark regex>
	go test -run xxx -bench "$2" -benchtime "$BENCHTIME" -benchmem "$1" 2>&1 |
		awk '/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = "null"; bytes = "null"; allocs = "null"
			# Columns vary (b.SetBytes adds MB/s), so key on unit labels.
			for (i = 3; i <= NF; i++) {
				if ($i == "ns/op") ns = $(i - 1)
				else if ($i == "B/op") bytes = $(i - 1)
				else if ($i == "allocs/op") allocs = $(i - 1)
			}
			printf "  { \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s },\n",
				name, ns, bytes, allocs
		}'
}

out=$(
	run ./internal/blockpage/ '^BenchmarkClassifyChain$'
	run ./internal/scanner/ '^BenchmarkIndexSearch$'
	run ./internal/fingerprint/ '^BenchmarkFingerprintIdentify$'
	run ./internal/fingerprint/ '^BenchmarkExtractTitle$'
)
if [ -z "$out" ]; then
	echo "bench_json.sh: no benchmark output captured" >&2
	exit 1
fi

printf '{\n"benchmarks": [\n%s\n]\n}\n' "$(printf '%s' "$out" | sed '$ s/,$//')"
