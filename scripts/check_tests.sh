#!/bin/sh
# Fail when a Go package in the module has no _test.go file at all, or
# carries only vacuous test files (no Test/Benchmark/Fuzz/Example
# function), so a new package cannot slip past the gate with an empty
# placeholder. Examples are demo programs, not production surface, and
# are exempt.
set -eu

cd "$(dirname "$0")/.."

missing=$(go list -f '{{if and (not .TestGoFiles) (not .XTestGoFiles)}}{{.ImportPath}}{{end}}' ./... |
	grep -v '^$' | grep -v '/examples/' || true)

if [ -n "$missing" ]; then
	echo "packages without any _test.go file:" >&2
	echo "$missing" | sed 's/^/  /' >&2
	exit 1
fi

vacuous=$(go list -f '{{$d := .Dir}}{{range .TestGoFiles}}{{$d}}/{{.}} {{end}}{{range .XTestGoFiles}}{{$d}}/{{.}} {{end}}{{printf "\t"}}{{.ImportPath}}' ./... |
	grep -v '/examples/' |
	while IFS="$(printf '\t')" read -r files pkg; do
		[ -n "$files" ] || continue
		# shellcheck disable=SC2086 # files is a space-separated list
		if ! grep -l -E '^func (Test|Benchmark|Fuzz|Example)' $files >/dev/null 2>&1; then
			echo "$pkg"
		fi
	done)

if [ -n "$vacuous" ]; then
	echo "packages whose test files define no Test/Benchmark/Fuzz/Example function:" >&2
	echo "$vacuous" | sed 's/^/  /' >&2
	exit 1
fi
echo "every package carries tests"
