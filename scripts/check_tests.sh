#!/bin/sh
# Fail when a Go package in the module has no _test.go file at all.
# Examples are demo programs, not production surface, and are exempt.
set -eu

cd "$(dirname "$0")/.."

missing=$(go list -f '{{if and (not .TestGoFiles) (not .XTestGoFiles)}}{{.ImportPath}}{{end}}' ./... |
	grep -v '^$' | grep -v '/examples/' || true)

if [ -n "$missing" ]; then
	echo "packages without any _test.go file:" >&2
	echo "$missing" | sed 's/^/  /' >&2
	exit 1
fi
echo "every package carries tests"
